// Randomized differential tests: ReassemblyBuffer (interval-map
// implementation) against a brute-force std::set reference, and Scoreboard
// pipe/loss accounting against a brute-force flag model.  Deterministic
// seeds make failures reproducible.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/random.hpp"
#include "tcp/reassembly.hpp"
#include "cc/scoreboard.hpp"

namespace rlacast::tcp {
namespace {

/// Brute-force reassembly reference.
class RefBuffer {
 public:
  bool add(net::SeqNum s) {
    if (s < cum_ || got_.count(s)) return false;
    got_.insert(s);
    while (got_.count(cum_)) {
      got_.erase(cum_);
      ++cum_;
    }
    return true;
  }
  bool has(net::SeqNum s) const { return s < cum_ || got_.count(s); }
  net::SeqNum cum() const { return cum_; }
  std::size_t ooo() const { return got_.size(); }

 private:
  net::SeqNum cum_ = 0;
  std::set<net::SeqNum> got_;
};

class ReassemblyFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReassemblyFuzz, MatchesReferenceOnRandomArrivals) {
  sim::Rng rng(GetParam());
  ReassemblyBuffer buf;
  RefBuffer ref;
  net::SeqNum frontier = 0;  // highest seq "sent" so far
  for (int step = 0; step < 20000; ++step) {
    // Arrivals cluster near the frontier with occasional stragglers,
    // mimicking a window of in-flight packets with reordering and loss.
    net::SeqNum s;
    if (rng.chance(0.7)) {
      s = frontier++;
    } else {
      const net::SeqNum lo = std::max<net::SeqNum>(0, frontier - 40);
      s = rng.uniform_int(lo, frontier + 5);
      frontier = std::max(frontier, s + 1);
    }
    if (rng.chance(0.1)) continue;  // drop: never delivered
    ASSERT_EQ(buf.add(s), ref.add(s)) << "seq " << s << " step " << step;
    ASSERT_EQ(buf.cum_ack(), ref.cum()) << "step " << step;
    ASSERT_EQ(buf.ooo_count(), ref.ooo()) << "step " << step;
  }
  // Spot-check membership across the whole visited range.
  for (net::SeqNum s = 0; s < frontier; s += 7)
    EXPECT_EQ(buf.has(s), ref.has(s)) << s;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReassemblyFuzz,
                         ::testing::Values(1u, 2u, 3u, 42u, 999u));

TEST(ReassemblyFuzz, SackBlocksAlwaysValid) {
  sim::Rng rng(77);
  ReassemblyBuffer buf;
  net::SeqNum frontier = 0;
  for (int step = 0; step < 5000; ++step) {
    const net::SeqNum lo = std::max<net::SeqNum>(0, frontier - 30);
    const net::SeqNum s = rng.uniform_int(lo, frontier + 3);
    frontier = std::max(frontier, s + 1);
    buf.add(s);
    net::SackBlock blocks[net::kMaxSackBlocks];
    const int n = buf.sack_blocks(blocks, net::kMaxSackBlocks);
    for (int b = 0; b < n; ++b) {
      ASSERT_LT(blocks[b].lo, blocks[b].hi);
      ASSERT_GE(blocks[b].lo, buf.cum_ack());
      // Every claimed seq truly received; boundaries truly missing.
      ASSERT_TRUE(buf.has(blocks[b].lo));
      ASSERT_TRUE(buf.has(blocks[b].hi - 1));
      ASSERT_FALSE(buf.has(blocks[b].hi));
      if (blocks[b].lo > 0) ASSERT_FALSE(buf.has(blocks[b].lo - 1));
    }
  }
}

/// Brute-force scoreboard reference for pipe accounting.
struct RefScoreboard {
  struct Flags {
    bool sacked = false, lost = false, rexmitted = false;
  };
  std::map<net::SeqNum, Flags> pkts;
  net::SeqNum una = 0, high = 0;

  std::int64_t pipe() const {
    std::int64_t p = 0;
    for (const auto& [s, f] : pkts) {
      if (f.sacked) continue;
      if (f.lost && !f.rexmitted) continue;
      ++p;
    }
    return p;
  }
  void detect(int dupthresh) {
    int above = 0;
    for (auto it = pkts.rbegin(); it != pkts.rend(); ++it) {
      if (it->second.sacked)
        ++above;
      else if (above >= dupthresh)
        it->second.lost = true;
    }
  }
};

class ScoreboardFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScoreboardFuzz, PipeMatchesBruteForce) {
  sim::Rng rng(GetParam());
  cc::Scoreboard sb;
  RefScoreboard ref;
  for (int step = 0; step < 4000; ++step) {
    const int action = static_cast<int>(rng.uniform_int(0, 3));
    if (action == 0 || ref.pkts.size() < 5) {  // send new
      sb.on_send(ref.high);
      ref.pkts[ref.high];
      ++ref.high;
    } else if (action == 1) {  // sack a random outstanding seq
      const auto idx = rng.uniform_int(0, static_cast<std::int64_t>(ref.pkts.size()) - 1);
      auto it = ref.pkts.begin();
      std::advance(it, idx);
      net::SackBlock b{it->first, it->first + 1};
      sb.apply_sack(&b, 1);
      it->second.sacked = true;
      sb.detect_losses(3);
      ref.detect(3);
    } else if (action == 2) {  // retransmit the next lost hole
      const net::SeqNum next = sb.next_to_retransmit();
      if (next != net::kNoSeq) {
        sb.on_retransmit(next);
        ref.pkts[next].rexmitted = true;
      }
    } else {  // cumulative advance past a random prefix
      const net::SeqNum adv =
          ref.una + rng.uniform_int(0, 3);
      // reference advance: must mimic "advance to first unreceived" loosely;
      // here we advance unconditionally like a cumulative ACK would.
      sb.advance(adv);
      while (!ref.pkts.empty() && ref.pkts.begin()->first < adv)
        ref.pkts.erase(ref.pkts.begin());
      ref.una = std::max(ref.una, adv);
    }
    ASSERT_EQ(sb.pipe(), ref.pipe()) << "step " << step;
    ASSERT_EQ(sb.outstanding(),
              static_cast<std::int64_t>(ref.high - ref.una))
        << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScoreboardFuzz,
                         ::testing::Values(10u, 20u, 30u));

}  // namespace
}  // namespace rlacast::tcp
