// Zero-allocation guarantees of the event engine and packet pipeline.
//
// This binary replaces the global operator new/delete with counting
// wrappers, warms each subsystem past its growth phase (slab, heap, packet
// rings), and then asserts that a steady-state window — timer re-arms, link
// traffic, multicast fan-out — performs literally zero heap allocations.
// The counter is per-binary, which is why this test lives in its own file.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>

#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace {
std::uint64_t g_news = 0;
}  // namespace

void* operator new(std::size_t n) {
  ++g_news;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  ++g_news;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rlacast {
namespace {

class CountingSink final : public net::Agent {
 public:
  void on_receive(const net::Packet&) override { ++received; }
  std::uint64_t received = 0;
};

TEST(EngineAlloc, SteadyStateTimerChurnAllocatesNothing) {
  sim::Simulator sim;
  int fires = 0;
  sim::Timer t(sim, [&] { ++fires; });
  // Warm-up: grow the slab and heap, exercise arm, in-place reschedule,
  // fire, and slot reuse once each.
  for (int i = 0; i < 8; ++i) {
    t.schedule(1.0);
    t.schedule(2.0);
    sim.run_all();
  }

  const std::uint64_t before = g_news;
  for (int i = 0; i < 10000; ++i) {
    t.schedule(1.0);  // arm (slot reuse)
    t.schedule(2.0);  // in-place retarget
    sim.run_all();    // fire
  }
  EXPECT_EQ(g_news - before, 0u)
      << "timer arm/reschedule/fire cycle hit the heap";
  EXPECT_EQ(fires, 8 + 10000);
}

TEST(EngineAlloc, SteadyStateLinkTrafficAllocatesNothing) {
  sim::Simulator sim{1};
  net::Network net{sim};
  const net::NodeId a = net.add_node();
  const net::NodeId b = net.add_node();
  net::LinkConfig cfg;
  cfg.bandwidth_bps = 8e6;  // 1000 B -> 1 ms serialization
  cfg.delay = 0.01;
  cfg.buffer_pkts = 64;
  net.connect(a, b, cfg);
  net.build_routes();
  CountingSink sink;
  net.attach(b, 1, &sink);

  // CBR source at half the link rate, driven by a self-rescheduling timer —
  // the same shape as every periodic agent in the repository.
  net::SeqNum next_seq = 0;
  sim::Timer src(sim, [&] {
    net::Packet p;
    p.src = a;
    p.dst = b;
    p.dst_port = 1;
    p.seq = next_seq++;
    net.inject(p);
    src.schedule(0.002);
  });
  src.schedule(0.0);
  sim.run_until(0.5);  // warm-up: queue ring, pipe ring, slab, heap

  const std::uint64_t before = g_news;
  const std::uint64_t delivered_before = sink.received;
  sim.run_until(10.0);
  EXPECT_EQ(g_news - before, 0u) << "link pipeline hit the heap";
  EXPECT_GT(sink.received - delivered_before, 4000u);
}

TEST(EngineAlloc, SteadyStateMulticastFanOutAllocatesNothing) {
  sim::Simulator sim{1};
  net::Network net{sim};
  const net::NodeId s = net.add_node();
  const net::NodeId g = net.add_node();
  const net::NodeId r1 = net.add_node();
  const net::NodeId r2 = net.add_node();
  net::LinkConfig cfg;
  cfg.bandwidth_bps = 8e6;
  cfg.delay = 0.01;
  cfg.buffer_pkts = 64;
  net.connect(s, g, cfg);
  net.connect(g, r1, cfg);
  net.connect(g, r2, cfg);
  net.build_routes();
  const net::GroupId group = 1;
  net.join_group(group, s, r1);
  net.join_group(group, s, r2);
  CountingSink sink1, sink2;
  net.subscribe(group, r1, &sink1);
  net.subscribe(group, r2, &sink2);

  net::SeqNum next_seq = 0;
  sim::Timer src(sim, [&] {
    net::Packet p;
    p.src = s;
    p.group = group;
    p.seq = next_seq++;
    net.inject(p);
    src.schedule(0.002);
  });
  src.schedule(0.0);
  sim.run_until(0.5);

  const std::uint64_t before = g_news;
  sim.run_until(10.0);
  EXPECT_EQ(g_news - before, 0u) << "multicast fan-out hit the heap";
  EXPECT_GT(sink1.received, 4000u);
  EXPECT_EQ(sink1.received, sink2.received);
}

}  // namespace
}  // namespace rlacast
