// Scoreboard tests: SACK application, the three-dup loss rule, pipe
// accounting, retransmission bookkeeping, and cumulative advance.
#include <gtest/gtest.h>

#include "cc/scoreboard.hpp"

namespace rlacast::cc {
namespace {

Scoreboard with_sent(int n) {
  Scoreboard sb;
  for (net::SeqNum s = 0; s < n; ++s) sb.on_send(s);
  return sb;
}

void sack_one(Scoreboard& sb, net::SeqNum s) {
  net::SackBlock b{s, s + 1};
  sb.apply_sack(&b, 1);
}

TEST(Scoreboard, AdvanceReturnsNewlyAcked) {
  Scoreboard sb = with_sent(10);
  EXPECT_EQ(sb.advance(4), 4);
  EXPECT_EQ(sb.una(), 4);
  EXPECT_EQ(sb.advance(4), 0);  // no regress, no double count
  EXPECT_EQ(sb.advance(2), 0);
}

TEST(Scoreboard, SackMarksAndCounts) {
  Scoreboard sb = with_sent(10);
  net::SackBlock b{3, 6};
  EXPECT_EQ(sb.apply_sack(&b, 1), 3);
  EXPECT_TRUE(sb.is_sacked(3));
  EXPECT_TRUE(sb.is_sacked(5));
  EXPECT_FALSE(sb.is_sacked(6));
  EXPECT_EQ(sb.apply_sack(&b, 1), 0);  // idempotent
  EXPECT_EQ(sb.sacked_count(), 3);
}

TEST(Scoreboard, LossRequiresDupthreshAbove) {
  Scoreboard sb = with_sent(10);
  sack_one(sb, 2);
  sack_one(sb, 3);
  EXPECT_EQ(sb.detect_losses(3), 0);  // only 2 SACKed above seq 0/1
  sack_one(sb, 4);
  EXPECT_EQ(sb.detect_losses(3), 2);  // seqs 0 and 1 now lost
  EXPECT_TRUE(sb.is_lost(0));
  EXPECT_TRUE(sb.is_lost(1));
  EXPECT_FALSE(sb.is_lost(5));
}

TEST(Scoreboard, LossDetectionCountsAllSackedAbove) {
  // The rule is "three above", not "three contiguous": a hole in the middle
  // still counts toward packets above lower holes.
  Scoreboard sb = with_sent(10);
  sack_one(sb, 1);
  sack_one(sb, 4);
  sack_one(sb, 7);
  EXPECT_EQ(sb.detect_losses(3), 1);  // only seq 0 has 3 SACKed above
  EXPECT_TRUE(sb.is_lost(0));
  EXPECT_FALSE(sb.is_lost(2));  // just 2 above (4, 7)
}

TEST(Scoreboard, NextToRetransmitIsLowestUnhandledLoss) {
  Scoreboard sb = with_sent(10);
  for (net::SeqNum s : {3, 4, 5}) sack_one(sb, s);
  sb.detect_losses(3);
  EXPECT_EQ(sb.next_to_retransmit(), 0);
  sb.on_retransmit(0);
  EXPECT_EQ(sb.next_to_retransmit(), 1);
  sb.on_retransmit(1);
  sb.on_retransmit(2);
  EXPECT_EQ(sb.next_to_retransmit(), net::kNoSeq);
}

TEST(Scoreboard, PipeConservation) {
  Scoreboard sb = with_sent(10);  // pipe = 10 outstanding
  EXPECT_EQ(sb.pipe(), 10);
  for (net::SeqNum s : {5, 6, 7}) sack_one(sb, s);
  EXPECT_EQ(sb.pipe(), 7);  // SACKed packets left the pipe
  sb.detect_losses(3);      // seqs 0..4 minus sacked -> 0,1,2,3,4 lost
  EXPECT_EQ(sb.pipe(), 2);  // lost & unretransmitted leave the pipe (9,8... no:
                            // remaining in pipe: 8, 9)
  sb.on_retransmit(0);
  EXPECT_EQ(sb.pipe(), 3);  // retransmission re-enters the pipe
}

TEST(Scoreboard, AdvanceClearsState) {
  Scoreboard sb = with_sent(10);
  for (net::SeqNum s : {4, 5, 6}) sack_one(sb, s);
  sb.detect_losses(3);
  sb.advance(7);
  EXPECT_EQ(sb.sacked_count(), 0);
  EXPECT_EQ(sb.lost_count(), 0);
  EXPECT_EQ(sb.pipe(), 3);
}

TEST(Scoreboard, SackOfLostPacketUndoesLoss) {
  Scoreboard sb = with_sent(10);
  for (net::SeqNum s : {4, 5, 6}) sack_one(sb, s);
  sb.detect_losses(3);
  ASSERT_TRUE(sb.is_lost(0));
  sack_one(sb, 0);  // late arrival: the "loss" was reordering
  EXPECT_EQ(sb.lost_count(), 3);  // 1,2,3 remain lost
  EXPECT_EQ(sb.next_to_retransmit(), 1);
}

TEST(Scoreboard, MarkAllLostForTimeout) {
  Scoreboard sb = with_sent(6);
  sack_one(sb, 4);
  sb.on_retransmit(0);
  sb.mark_all_lost();
  EXPECT_TRUE(sb.is_lost(0));
  EXPECT_FALSE(sb.was_retransmitted(0));  // cleared for go-back restart
  EXPECT_FALSE(sb.is_lost(4));            // SACKed survives
  EXPECT_EQ(sb.next_to_retransmit(), 0);
}

TEST(Scoreboard, ResetRestartsCleanly) {
  Scoreboard sb = with_sent(10);
  sb.reset(100);
  EXPECT_EQ(sb.una(), 100);
  EXPECT_EQ(sb.high(), 100);
  EXPECT_EQ(sb.outstanding(), 0);
  EXPECT_EQ(sb.pipe(), 0);
}

}  // namespace
}  // namespace rlacast::cc
