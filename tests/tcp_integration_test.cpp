// TCP integration tests on real bottleneck links: utilization, fairness
// between equal-RTT competitors, and consistency with the analytic window
// formula the paper's proofs build on.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "model/formulas.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"

namespace rlacast::tcp {
namespace {

struct Dumbbell {
  sim::Simulator sim;
  net::Network net{sim};
  net::NodeId s, g, r;
  std::vector<std::unique_ptr<TcpSender>> senders;
  std::vector<std::unique_ptr<TcpReceiver>> receivers;
  net::Link* bottleneck = nullptr;

  Dumbbell(int n_flows, double bottleneck_pps, net::QueueKind kind,
           std::uint64_t seed = 1, std::size_t buffer = 20)
      : sim(seed) {
    s = net.add_node();
    g = net.add_node();
    r = net.add_node();
    net::LinkConfig bttl;
    bttl.bandwidth_bps = bottleneck_pps * 8000.0;  // 1000-byte packets
    bttl.delay = 0.01;
    bttl.queue = kind;
    bttl.buffer_pkts = buffer;
    net.connect(s, g, bttl);
    net::LinkConfig fast;
    fast.bandwidth_bps = 1e9;
    fast.delay = 0.04;
    net.connect(g, r, fast);
    net.build_routes();
    bottleneck = net.link_between(s, g);

    TcpParams params;
    params.max_send_overhead =
        kind == net::QueueKind::kDropTail ? 8000.0 / bttl.bandwidth_bps : 0.0;
    auto starts = sim.rng_stream("starts");
    for (int i = 0; i < n_flows; ++i) {
      const net::PortId port = 10 + i;
      receivers.push_back(std::make_unique<TcpReceiver>(net, r, port));
      senders.push_back(std::make_unique<TcpSender>(net, s, port, r, port,
                                                    i + 1, params));
      senders.back()->start_at(starts.uniform(0.0, 1.0));
    }
  }

  void run(double warmup, double duration) {
    sim.at(warmup, [&] {
      for (auto& snd : senders)
        snd->measurement().begin_measurement(sim.now());
    });
    sim.run_until(duration);
  }
};

TEST(TcpIntegration, SingleFlowFillsBottleneck) {
  Dumbbell d(1, 200.0, net::QueueKind::kDropTail);
  d.run(20.0, 120.0);
  const double thr = d.senders[0]->measurement().throughput_pps(120.0);
  EXPECT_GT(thr, 170.0);   // > 85% utilization
  EXPECT_LE(thr, 201.0);   // cannot beat capacity
}

TEST(TcpIntegration, SingleFlowFillsRedBottleneck) {
  Dumbbell d(1, 200.0, net::QueueKind::kRed);
  d.run(20.0, 120.0);
  const double thr = d.senders[0]->measurement().throughput_pps(120.0);
  EXPECT_GT(thr, 150.0);  // RED sheds a little more than drop-tail
  EXPECT_LE(thr, 201.0);
}

TEST(TcpIntegration, EqualRttFlowsShareFairlyDropTail) {
  Dumbbell d(4, 400.0, net::QueueKind::kDropTail);
  d.run(30.0, 330.0);
  std::vector<double> thr;
  for (auto& s : d.senders)
    thr.push_back(s->measurement().throughput_pps(330.0));
  const double worst = *std::min_element(thr.begin(), thr.end());
  const double best = *std::max_element(thr.begin(), thr.end());
  EXPECT_GT(worst, 0.0);
  EXPECT_LT(best / worst, 2.0);  // no starvation, rough equality
}

TEST(TcpIntegration, EqualRttFlowsShareFairlyRed) {
  Dumbbell d(4, 400.0, net::QueueKind::kRed);
  d.run(30.0, 330.0);
  std::vector<double> thr;
  for (auto& s : d.senders)
    thr.push_back(s->measurement().throughput_pps(330.0));
  const double worst = *std::min_element(thr.begin(), thr.end());
  const double best = *std::max_element(thr.begin(), thr.end());
  EXPECT_LT(best / worst, 1.8);  // RED is tighter than drop-tail
}

TEST(TcpIntegration, AggregateMatchesCapacity) {
  Dumbbell d(4, 400.0, net::QueueKind::kDropTail);
  d.run(30.0, 230.0);
  double total = 0.0;
  for (auto& s : d.senders) total += s->measurement().throughput_pps(230.0);
  EXPECT_GT(total, 340.0);
  EXPECT_LE(total, 404.0);
}

TEST(TcpIntegration, WindowFollowsPaFormula) {
  // Under RED, every connection sees the same loss probability p; eq. (1)
  // predicts the average window ~ sqrt(2(1-p)/p) up to a modest constant.
  Dumbbell d(2, 300.0, net::QueueKind::kRed);
  d.run(30.0, 330.0);
  const auto& m = d.senders[0]->measurement();
  const double window_cuts = static_cast<double>(m.window_cuts());
  const double acked = m.throughput_pps(330.0) * 300.0;
  ASSERT_GT(window_cuts, 10.0);
  const double p = window_cuts / acked;  // congestion probability
  const double predicted = model::tcp_pa_window(p);
  const double measured = m.avg_cwnd(330.0);
  EXPECT_GT(measured, 0.5 * predicted);
  EXPECT_LT(measured, 2.0 * predicted);
}

TEST(TcpIntegration, LongerRttGetsLessBandwidth) {
  // The known TCP RTT bias, which motivates the paper's restricted-topology
  // fairness definition: verify our substrate reproduces it.
  sim::Simulator sim(3);
  net::Network net(sim);
  const auto s = net.add_node(), g = net.add_node();
  const auto r1 = net.add_node(), r2 = net.add_node();
  net::LinkConfig bttl;
  bttl.bandwidth_bps = 300 * 8000.0;
  bttl.delay = 0.005;
  net.connect(s, g, bttl);
  net::LinkConfig near_leg;
  near_leg.bandwidth_bps = 1e9;
  near_leg.delay = 0.01;
  net.connect(g, r1, near_leg);
  net::LinkConfig far_leg = near_leg;
  far_leg.delay = 0.15;
  net.connect(g, r2, far_leg);
  net.build_routes();

  TcpParams params;
  params.max_send_overhead = 8000.0 / bttl.bandwidth_bps;
  TcpReceiver rcv1(net, r1, 1), rcv2(net, r2, 1);
  TcpSender snd1(net, s, 1, r1, 1, 1, params);
  TcpSender snd2(net, s, 2, r2, 1, 2, params);
  snd1.start_at(0.1);
  snd2.start_at(0.4);
  sim.at(30.0, [&] {
    snd1.measurement().begin_measurement(sim.now());
    snd2.measurement().begin_measurement(sim.now());
  });
  sim.run_until(330.0);
  EXPECT_GT(snd1.measurement().throughput_pps(330.0),
            1.5 * snd2.measurement().throughput_pps(330.0));
}

}  // namespace
}  // namespace rlacast::tcp
