# Record/replay guard for benches whose stdout carries wall-clock timings
# and therefore has no golden hash (e.g. bench_scale's ns/signal columns).
# The invariant checked is the journal one only: every journal recorded by
# `bench --smoke --record-journal` must replay bit-identical (exit 0 and a
# VERIFIED line).  Benches with deterministic stdout use the stronger
# replay_bench_test.cmake, which also pins the golden hash.
#
# Usage (wired up by tests/CMakeLists.txt):
#   cmake -DBENCH=<binary> -DWORKDIR=<scratch dir> -P replay_verify_test.cmake
if(NOT DEFINED BENCH OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR
          "usage: cmake -DBENCH=<bench binary> -DWORKDIR=<scratch dir> "
          "-P replay_verify_test.cmake")
endif()

file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})

execute_process(
  COMMAND ${BENCH} --smoke --record-journal ${WORKDIR}
  OUTPUT_VARIABLE bench_out
  RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR
          "${BENCH} --smoke --record-journal exited with status ${bench_rc}:\n"
          "${bench_out}")
endif()

file(GLOB journals ${WORKDIR}/*.journal)
list(LENGTH journals n_journals)
if(n_journals EQUAL 0)
  message(FATAL_ERROR "no journals recorded in ${WORKDIR}")
endif()

# Replay every journal: the smoke grid covers both census modes (exact and
# sampled cases) and both gateway disciplines, and each must verify.
foreach(journal IN LISTS journals)
  execute_process(
    COMMAND ${BENCH} --replay ${journal}
    OUTPUT_VARIABLE replay_out
    RESULT_VARIABLE replay_rc)
  if(NOT replay_rc EQUAL 0)
    message(FATAL_ERROR
            "${BENCH} --replay ${journal} exited with status ${replay_rc}:\n"
            "${replay_out}")
  endif()
  if(NOT replay_out MATCHES "VERIFIED bit-identical")
    message(FATAL_ERROR
            "${BENCH} --replay ${journal} did not report a verified replay:\n"
            "${replay_out}")
  endif()
endforeach()

file(REMOVE_RECURSE ${WORKDIR})
