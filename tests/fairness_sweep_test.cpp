// Property sweep: the essential-fairness guarantees must hold across seeds
// and gateway types, not just for one lucky run.  Each case runs the
// 4-branch restricted topology and checks the full §2 contract:
//   * RLA throughput within (a*WTCP, b*WTCP)  [Theorems I/II]
//   * TCP is not shut out (minimum requirement 1)
//   * RLA is not shut out (minimum requirement 2)
//   * forced cuts stay rare (§3.3's "rarely invoked")
#include <gtest/gtest.h>

#include <tuple>

#include "model/formulas.hpp"
#include "topo/flat_tree.hpp"

namespace rlacast {
namespace {

using Param = std::tuple<std::uint64_t /*seed*/, topo::GatewayType>;

class FairnessSweep : public ::testing::TestWithParam<Param> {};

TEST_P(FairnessSweep, EssentialFairnessContractHolds) {
  const auto [seed, gateway] = GetParam();
  topo::FlatTreeConfig cfg;
  cfg.branches.assign(4, topo::FlatBranch{200.0, 1});
  cfg.gateway = gateway;
  cfg.duration = 200.0;
  cfg.warmup = 50.0;
  cfg.seed = seed;
  const auto res = topo::run_flat_tree(cfg);

  const double wtcp = res.worst_tcp().throughput_pps;
  ASSERT_GT(wtcp, 0.0);
  const double ratio = res.rla.throughput_pps / wtcp;
  const auto bounds = gateway == topo::GatewayType::kRed
                          ? model::theorem1_red_bounds(4)
                          : model::theorem2_droptail_bounds(4);
  EXPECT_GT(ratio, bounds.lo) << "seed " << seed;
  EXPECT_LT(ratio, bounds.hi) << "seed " << seed;

  // Neither side shut out: both get a material share of the 100 pkt/s
  // per-flow fair share.
  EXPECT_GT(wtcp, 25.0);
  EXPECT_GT(res.rla.throughput_pps, 25.0);

  // Forced cuts rare relative to total cuts.
  EXPECT_LE(res.rla.forced_cuts, res.rla.window_cuts / 4 + 2);

  // All four equally congested receivers end up troubled.
  EXPECT_EQ(res.num_troubled_final, 4);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndGateways, FairnessSweep,
    ::testing::Combine(::testing::Values(1u, 7u, 23u),
                       ::testing::Values(topo::GatewayType::kDropTail,
                                         topo::GatewayType::kRed)),
    [](const auto& info) {
      return std::string(std::get<1>(info.param) == topo::GatewayType::kRed
                             ? "red"
                             : "droptail") +
             "_seed" + std::to_string(std::get<0>(info.param));
    });

}  // namespace
}  // namespace rlacast
