# Perf-regression gate (ROADMAP item 5): run `bench_engine --trajectory`
# fresh and compare its headline throughput metrics against the checked-in
# repo-root BENCH_engine.json snapshot.  A fresh metric more than 15% below
# the snapshot emits a CMake WARNING — visible in the ctest log — but does
# NOT fail the test: shared CI machines make hard throughput gates too
# flaky, and the snapshot itself is regenerated (tools/regen_results.sh) on
# machines that don't match CI.  The test FAILS only when the bench itself
# fails or emits no trajectory.
#
# Invoked by ctest as:
#   cmake -DBENCH=<bench_engine> -DBASELINE=<BENCH_engine.json>
#         -DWORKDIR=<scratch> -P perf_gate_test.cmake
#
# Compatibility: the project's cmake_minimum_required is 3.16, which has no
# string(JSON) and whose math() is integer-only — metrics are regex-parsed
# and the 0.85x threshold comparison is delegated to awk (skipped with a
# notice on hosts without awk).

if(NOT DEFINED BENCH OR NOT DEFINED BASELINE OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "perf_gate_test: need -DBENCH, -DBASELINE, -DWORKDIR")
endif()
if(NOT EXISTS "${BASELINE}")
  message(FATAL_ERROR "perf_gate_test: baseline snapshot ${BASELINE} missing")
endif()

file(MAKE_DIRECTORY "${WORKDIR}")
set(FRESH "${WORKDIR}/engine-trajectory.json")
file(REMOVE "${FRESH}")

execute_process(
  COMMAND "${BENCH}" --trajectory "${FRESH}"
  RESULT_VARIABLE bench_status
  OUTPUT_VARIABLE bench_out
  ERROR_VARIABLE bench_err)
if(NOT bench_status EQUAL 0)
  message(FATAL_ERROR
          "perf_gate: ${BENCH} exited ${bench_status}\n${bench_out}\n${bench_err}")
endif()
if(NOT EXISTS "${FRESH}")
  message(FATAL_ERROR "perf_gate: bench emitted no trajectory at ${FRESH}")
endif()

# Extracts `"case.metric": <number>` pairs; keys land in <prefix>_keys and
# values in <prefix>_<key>.  Only dotted keys match, which selects exactly
# the per-case throughput metrics and skips config scalars like "seed".
# Key segments may carry hyphens and further dots (the workload snapshot
# uses "sack-ftp.droptail.jain_min"-shaped keys).
function(parse_metrics json_path prefix)
  file(READ "${json_path}" raw)
  string(REGEX MATCHALL
         "\"[A-Za-z0-9_-]+(\\.[A-Za-z0-9_-]+)+\"[ \t]*:[ \t]*[-+.0-9eE]+"
         pairs "${raw}")
  set(keys "")
  foreach(pair IN LISTS pairs)
    string(REGEX REPLACE "\"([A-Za-z0-9_.-]+)\".*" "\\1" key "${pair}")
    string(REGEX REPLACE ".*:[ \t]*([-+.0-9eE]+)" "\\1" val "${pair}")
    list(APPEND keys "${key}")
    set(${prefix}_${key} "${val}" PARENT_SCOPE)
  endforeach()
  set(${prefix}_keys "${keys}" PARENT_SCOPE)
endfunction()

parse_metrics("${BASELINE}" base)
parse_metrics("${FRESH}" fresh)

list(LENGTH base_keys n_base)
if(n_base EQUAL 0)
  message(FATAL_ERROR "perf_gate: no metrics parsed from ${BASELINE}")
endif()

find_program(AWK awk)
if(NOT AWK)
  message(STATUS "perf_gate: awk not found; parsed ${n_base} baseline metrics, "
                 "skipping threshold comparison")
  return()
endif()

set(regressions 0)
foreach(key IN LISTS base_keys)
  if(NOT DEFINED fresh_${key})
    message(WARNING "perf_gate: metric ${key} in snapshot but missing from "
                    "fresh run — bench output drifted?")
    continue()
  endif()
  # verdict = 1 when fresh < 0.85 * baseline (a >15% throughput drop).
  execute_process(
    COMMAND "${AWK}" "BEGIN { print (${fresh_${key}} < 0.85 * ${base_${key}}) ? 1 : 0 }"
    OUTPUT_VARIABLE below
    OUTPUT_STRIP_TRAILING_WHITESPACE)
  if(below STREQUAL "1")
    math(EXPR regressions "${regressions} + 1")
    message(WARNING "perf_gate: ${key} fell >15% below the checked-in "
                    "snapshot: ${fresh_${key}} vs baseline ${base_${key}} "
                    "(regenerate ${BASELINE} via tools/regen_results.sh "
                    "if intentional)")
  endif()
endforeach()

if(regressions EQUAL 0)
  message(STATUS "perf_gate: ${n_base} metrics within 15% of ${BASELINE}")
else()
  message(STATUS "perf_gate: ${regressions} metric(s) below threshold (warned, "
                 "not failed)")
endif()
