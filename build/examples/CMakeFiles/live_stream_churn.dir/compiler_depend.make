# Empty compiler generated dependencies file for live_stream_churn.
# This may be replaced when dependencies are built.
