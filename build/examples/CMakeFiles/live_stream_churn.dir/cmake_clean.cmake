file(REMOVE_RECURSE
  "CMakeFiles/live_stream_churn.dir/live_stream_churn.cpp.o"
  "CMakeFiles/live_stream_churn.dir/live_stream_churn.cpp.o.d"
  "live_stream_churn"
  "live_stream_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_stream_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
