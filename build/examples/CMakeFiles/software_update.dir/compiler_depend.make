# Empty compiler generated dependencies file for software_update.
# This may be replaced when dependencies are built.
