file(REMOVE_RECURSE
  "CMakeFiles/software_update.dir/software_update.cpp.o"
  "CMakeFiles/software_update.dir/software_update.cpp.o.d"
  "software_update"
  "software_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/software_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
