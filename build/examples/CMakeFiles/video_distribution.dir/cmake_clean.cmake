file(REMOVE_RECURSE
  "CMakeFiles/video_distribution.dir/video_distribution.cpp.o"
  "CMakeFiles/video_distribution.dir/video_distribution.cpp.o.d"
  "video_distribution"
  "video_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
