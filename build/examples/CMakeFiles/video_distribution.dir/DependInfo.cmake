
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/video_distribution.cpp" "examples/CMakeFiles/video_distribution.dir/video_distribution.cpp.o" "gcc" "examples/CMakeFiles/video_distribution.dir/video_distribution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/rlacast_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/rlacast_model.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/rlacast_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/rla/CMakeFiles/rlacast_rla.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/rlacast_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/rlacast_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rlacast_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rlacast_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rlacast_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
