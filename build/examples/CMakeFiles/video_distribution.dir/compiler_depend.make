# Empty compiler generated dependencies file for video_distribution.
# This may be replaced when dependencies are built.
