# Empty compiler generated dependencies file for red_vs_droptail.
# This may be replaced when dependencies are built.
