file(REMOVE_RECURSE
  "CMakeFiles/red_vs_droptail.dir/red_vs_droptail.cpp.o"
  "CMakeFiles/red_vs_droptail.dir/red_vs_droptail.cpp.o.d"
  "red_vs_droptail"
  "red_vs_droptail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/red_vs_droptail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
