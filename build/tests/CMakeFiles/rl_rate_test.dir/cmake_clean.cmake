file(REMOVE_RECURSE
  "CMakeFiles/rl_rate_test.dir/rl_rate_test.cpp.o"
  "CMakeFiles/rl_rate_test.dir/rl_rate_test.cpp.o.d"
  "rl_rate_test"
  "rl_rate_test.pdb"
  "rl_rate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_rate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
