# Empty dependencies file for rl_rate_test.
# This may be replaced when dependencies are built.
