file(REMOVE_RECURSE
  "CMakeFiles/model_markov_test.dir/model_markov_test.cpp.o"
  "CMakeFiles/model_markov_test.dir/model_markov_test.cpp.o.d"
  "model_markov_test"
  "model_markov_test.pdb"
  "model_markov_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_markov_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
