# Empty dependencies file for weighted_fairness_test.
# This may be replaced when dependencies are built.
