file(REMOVE_RECURSE
  "CMakeFiles/weighted_fairness_test.dir/weighted_fairness_test.cpp.o"
  "CMakeFiles/weighted_fairness_test.dir/weighted_fairness_test.cpp.o.d"
  "weighted_fairness_test"
  "weighted_fairness_test.pdb"
  "weighted_fairness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_fairness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
