file(REMOVE_RECURSE
  "CMakeFiles/tcp_scoreboard_test.dir/tcp_scoreboard_test.cpp.o"
  "CMakeFiles/tcp_scoreboard_test.dir/tcp_scoreboard_test.cpp.o.d"
  "tcp_scoreboard_test"
  "tcp_scoreboard_test.pdb"
  "tcp_scoreboard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_scoreboard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
