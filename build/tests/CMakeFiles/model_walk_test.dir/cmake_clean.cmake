file(REMOVE_RECURSE
  "CMakeFiles/model_walk_test.dir/model_walk_test.cpp.o"
  "CMakeFiles/model_walk_test.dir/model_walk_test.cpp.o.d"
  "model_walk_test"
  "model_walk_test.pdb"
  "model_walk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_walk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
