# Empty compiler generated dependencies file for model_walk_test.
# This may be replaced when dependencies are built.
