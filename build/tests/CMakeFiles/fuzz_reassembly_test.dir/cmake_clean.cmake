file(REMOVE_RECURSE
  "CMakeFiles/fuzz_reassembly_test.dir/fuzz_reassembly_test.cpp.o"
  "CMakeFiles/fuzz_reassembly_test.dir/fuzz_reassembly_test.cpp.o.d"
  "fuzz_reassembly_test"
  "fuzz_reassembly_test.pdb"
  "fuzz_reassembly_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_reassembly_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
