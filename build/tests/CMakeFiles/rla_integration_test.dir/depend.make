# Empty dependencies file for rla_integration_test.
# This may be replaced when dependencies are built.
