file(REMOVE_RECURSE
  "CMakeFiles/rla_integration_test.dir/rla_integration_test.cpp.o"
  "CMakeFiles/rla_integration_test.dir/rla_integration_test.cpp.o.d"
  "rla_integration_test"
  "rla_integration_test.pdb"
  "rla_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rla_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
