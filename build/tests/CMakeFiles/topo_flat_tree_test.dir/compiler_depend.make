# Empty compiler generated dependencies file for topo_flat_tree_test.
# This may be replaced when dependencies are built.
