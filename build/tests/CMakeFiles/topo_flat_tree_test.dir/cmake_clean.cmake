file(REMOVE_RECURSE
  "CMakeFiles/topo_flat_tree_test.dir/topo_flat_tree_test.cpp.o"
  "CMakeFiles/topo_flat_tree_test.dir/topo_flat_tree_test.cpp.o.d"
  "topo_flat_tree_test"
  "topo_flat_tree_test.pdb"
  "topo_flat_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_flat_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
