file(REMOVE_RECURSE
  "CMakeFiles/net_queue_test.dir/net_queue_test.cpp.o"
  "CMakeFiles/net_queue_test.dir/net_queue_test.cpp.o.d"
  "net_queue_test"
  "net_queue_test.pdb"
  "net_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
