file(REMOVE_RECURSE
  "CMakeFiles/net_red_test.dir/net_red_test.cpp.o"
  "CMakeFiles/net_red_test.dir/net_red_test.cpp.o.d"
  "net_red_test"
  "net_red_test.pdb"
  "net_red_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_red_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
