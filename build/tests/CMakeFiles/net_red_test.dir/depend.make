# Empty dependencies file for net_red_test.
# This may be replaced when dependencies are built.
