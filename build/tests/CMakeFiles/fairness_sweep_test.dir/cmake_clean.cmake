file(REMOVE_RECURSE
  "CMakeFiles/fairness_sweep_test.dir/fairness_sweep_test.cpp.o"
  "CMakeFiles/fairness_sweep_test.dir/fairness_sweep_test.cpp.o.d"
  "fairness_sweep_test"
  "fairness_sweep_test.pdb"
  "fairness_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairness_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
