file(REMOVE_RECURSE
  "CMakeFiles/rla_census_test.dir/rla_census_test.cpp.o"
  "CMakeFiles/rla_census_test.dir/rla_census_test.cpp.o.d"
  "rla_census_test"
  "rla_census_test.pdb"
  "rla_census_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rla_census_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
