# Empty dependencies file for rla_census_test.
# This may be replaced when dependencies are built.
