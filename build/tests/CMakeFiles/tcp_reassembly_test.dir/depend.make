# Empty dependencies file for tcp_reassembly_test.
# This may be replaced when dependencies are built.
