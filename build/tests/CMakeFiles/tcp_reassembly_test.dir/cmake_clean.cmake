file(REMOVE_RECURSE
  "CMakeFiles/tcp_reassembly_test.dir/tcp_reassembly_test.cpp.o"
  "CMakeFiles/tcp_reassembly_test.dir/tcp_reassembly_test.cpp.o.d"
  "tcp_reassembly_test"
  "tcp_reassembly_test.pdb"
  "tcp_reassembly_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_reassembly_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
