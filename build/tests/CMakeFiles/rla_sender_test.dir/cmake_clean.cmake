file(REMOVE_RECURSE
  "CMakeFiles/rla_sender_test.dir/rla_sender_test.cpp.o"
  "CMakeFiles/rla_sender_test.dir/rla_sender_test.cpp.o.d"
  "rla_sender_test"
  "rla_sender_test.pdb"
  "rla_sender_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rla_sender_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
