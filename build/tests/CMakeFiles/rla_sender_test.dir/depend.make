# Empty dependencies file for rla_sender_test.
# This may be replaced when dependencies are built.
