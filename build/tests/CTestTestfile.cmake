# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/sim_random_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/net_queue_test[1]_include.cmake")
include("/root/repo/build/tests/net_red_test[1]_include.cmake")
include("/root/repo/build/tests/net_link_test[1]_include.cmake")
include("/root/repo/build/tests/net_routing_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_reassembly_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_reassembly_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_variants_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_scoreboard_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_sender_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_integration_test[1]_include.cmake")
include("/root/repo/build/tests/rla_census_test[1]_include.cmake")
include("/root/repo/build/tests/rla_sender_test[1]_include.cmake")
include("/root/repo/build/tests/rla_integration_test[1]_include.cmake")
include("/root/repo/build/tests/session_test[1]_include.cmake")
include("/root/repo/build/tests/model_formulas_test[1]_include.cmake")
include("/root/repo/build/tests/model_markov_test[1]_include.cmake")
include("/root/repo/build/tests/model_walk_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/ecn_test[1]_include.cmake")
include("/root/repo/build/tests/rl_rate_test[1]_include.cmake")
include("/root/repo/build/tests/fairness_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/weighted_fairness_test[1]_include.cmake")
include("/root/repo/build/tests/topo_flat_tree_test[1]_include.cmake")
include("/root/repo/build/tests/topo_tree_test[1]_include.cmake")
