file(REMOVE_RECURSE
  "CMakeFiles/rlacast_stats.dir/ewma.cpp.o"
  "CMakeFiles/rlacast_stats.dir/ewma.cpp.o.d"
  "CMakeFiles/rlacast_stats.dir/histogram2d.cpp.o"
  "CMakeFiles/rlacast_stats.dir/histogram2d.cpp.o.d"
  "CMakeFiles/rlacast_stats.dir/summary.cpp.o"
  "CMakeFiles/rlacast_stats.dir/summary.cpp.o.d"
  "CMakeFiles/rlacast_stats.dir/table.cpp.o"
  "CMakeFiles/rlacast_stats.dir/table.cpp.o.d"
  "CMakeFiles/rlacast_stats.dir/time_weighted.cpp.o"
  "CMakeFiles/rlacast_stats.dir/time_weighted.cpp.o.d"
  "librlacast_stats.a"
  "librlacast_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlacast_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
