src/stats/CMakeFiles/rlacast_stats.dir/time_weighted.cpp.o: \
 /root/repo/src/stats/time_weighted.cpp /usr/include/stdc-predef.h \
 /root/repo/src/stats/time_weighted.hpp /root/repo/src/sim/time.hpp
