
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/ewma.cpp" "src/stats/CMakeFiles/rlacast_stats.dir/ewma.cpp.o" "gcc" "src/stats/CMakeFiles/rlacast_stats.dir/ewma.cpp.o.d"
  "/root/repo/src/stats/histogram2d.cpp" "src/stats/CMakeFiles/rlacast_stats.dir/histogram2d.cpp.o" "gcc" "src/stats/CMakeFiles/rlacast_stats.dir/histogram2d.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/stats/CMakeFiles/rlacast_stats.dir/summary.cpp.o" "gcc" "src/stats/CMakeFiles/rlacast_stats.dir/summary.cpp.o.d"
  "/root/repo/src/stats/table.cpp" "src/stats/CMakeFiles/rlacast_stats.dir/table.cpp.o" "gcc" "src/stats/CMakeFiles/rlacast_stats.dir/table.cpp.o.d"
  "/root/repo/src/stats/time_weighted.cpp" "src/stats/CMakeFiles/rlacast_stats.dir/time_weighted.cpp.o" "gcc" "src/stats/CMakeFiles/rlacast_stats.dir/time_weighted.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rlacast_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
