# Empty compiler generated dependencies file for rlacast_stats.
# This may be replaced when dependencies are built.
