file(REMOVE_RECURSE
  "librlacast_stats.a"
)
