# Empty dependencies file for rlacast_rla.
# This may be replaced when dependencies are built.
