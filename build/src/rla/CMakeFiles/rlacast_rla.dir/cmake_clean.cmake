file(REMOVE_RECURSE
  "CMakeFiles/rlacast_rla.dir/rla_receiver.cpp.o"
  "CMakeFiles/rlacast_rla.dir/rla_receiver.cpp.o.d"
  "CMakeFiles/rlacast_rla.dir/rla_sender.cpp.o"
  "CMakeFiles/rlacast_rla.dir/rla_sender.cpp.o.d"
  "CMakeFiles/rlacast_rla.dir/troubled_census.cpp.o"
  "CMakeFiles/rlacast_rla.dir/troubled_census.cpp.o.d"
  "librlacast_rla.a"
  "librlacast_rla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlacast_rla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
