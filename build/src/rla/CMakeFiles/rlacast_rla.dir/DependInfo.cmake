
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rla/rla_receiver.cpp" "src/rla/CMakeFiles/rlacast_rla.dir/rla_receiver.cpp.o" "gcc" "src/rla/CMakeFiles/rlacast_rla.dir/rla_receiver.cpp.o.d"
  "/root/repo/src/rla/rla_sender.cpp" "src/rla/CMakeFiles/rlacast_rla.dir/rla_sender.cpp.o" "gcc" "src/rla/CMakeFiles/rlacast_rla.dir/rla_sender.cpp.o.d"
  "/root/repo/src/rla/troubled_census.cpp" "src/rla/CMakeFiles/rlacast_rla.dir/troubled_census.cpp.o" "gcc" "src/rla/CMakeFiles/rlacast_rla.dir/troubled_census.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/rlacast_net.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/rlacast_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rlacast_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rlacast_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
