file(REMOVE_RECURSE
  "librlacast_rla.a"
)
