file(REMOVE_RECURSE
  "librlacast_trace.a"
)
