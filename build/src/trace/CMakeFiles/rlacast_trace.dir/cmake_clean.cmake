file(REMOVE_RECURSE
  "CMakeFiles/rlacast_trace.dir/buffer_periods.cpp.o"
  "CMakeFiles/rlacast_trace.dir/buffer_periods.cpp.o.d"
  "CMakeFiles/rlacast_trace.dir/packet_trace.cpp.o"
  "CMakeFiles/rlacast_trace.dir/packet_trace.cpp.o.d"
  "CMakeFiles/rlacast_trace.dir/queue_monitor.cpp.o"
  "CMakeFiles/rlacast_trace.dir/queue_monitor.cpp.o.d"
  "librlacast_trace.a"
  "librlacast_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlacast_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
