# Empty dependencies file for rlacast_trace.
# This may be replaced when dependencies are built.
