
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/buffer_periods.cpp" "src/trace/CMakeFiles/rlacast_trace.dir/buffer_periods.cpp.o" "gcc" "src/trace/CMakeFiles/rlacast_trace.dir/buffer_periods.cpp.o.d"
  "/root/repo/src/trace/packet_trace.cpp" "src/trace/CMakeFiles/rlacast_trace.dir/packet_trace.cpp.o" "gcc" "src/trace/CMakeFiles/rlacast_trace.dir/packet_trace.cpp.o.d"
  "/root/repo/src/trace/queue_monitor.cpp" "src/trace/CMakeFiles/rlacast_trace.dir/queue_monitor.cpp.o" "gcc" "src/trace/CMakeFiles/rlacast_trace.dir/queue_monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/rlacast_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rlacast_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rlacast_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
