# Empty compiler generated dependencies file for rlacast_sim.
# This may be replaced when dependencies are built.
