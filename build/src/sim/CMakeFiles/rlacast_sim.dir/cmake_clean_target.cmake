file(REMOVE_RECURSE
  "librlacast_sim.a"
)
