file(REMOVE_RECURSE
  "CMakeFiles/rlacast_sim.dir/random.cpp.o"
  "CMakeFiles/rlacast_sim.dir/random.cpp.o.d"
  "CMakeFiles/rlacast_sim.dir/scheduler.cpp.o"
  "CMakeFiles/rlacast_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/rlacast_sim.dir/simulator.cpp.o"
  "CMakeFiles/rlacast_sim.dir/simulator.cpp.o.d"
  "librlacast_sim.a"
  "librlacast_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlacast_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
