
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/ltrc.cpp" "src/baselines/CMakeFiles/rlacast_baselines.dir/ltrc.cpp.o" "gcc" "src/baselines/CMakeFiles/rlacast_baselines.dir/ltrc.cpp.o.d"
  "/root/repo/src/baselines/mbfc.cpp" "src/baselines/CMakeFiles/rlacast_baselines.dir/mbfc.cpp.o" "gcc" "src/baselines/CMakeFiles/rlacast_baselines.dir/mbfc.cpp.o.d"
  "/root/repo/src/baselines/rate_receiver.cpp" "src/baselines/CMakeFiles/rlacast_baselines.dir/rate_receiver.cpp.o" "gcc" "src/baselines/CMakeFiles/rlacast_baselines.dir/rate_receiver.cpp.o.d"
  "/root/repo/src/baselines/rate_sender.cpp" "src/baselines/CMakeFiles/rlacast_baselines.dir/rate_sender.cpp.o" "gcc" "src/baselines/CMakeFiles/rlacast_baselines.dir/rate_sender.cpp.o.d"
  "/root/repo/src/baselines/rl_rate.cpp" "src/baselines/CMakeFiles/rlacast_baselines.dir/rl_rate.cpp.o" "gcc" "src/baselines/CMakeFiles/rlacast_baselines.dir/rl_rate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/rlacast_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rlacast_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rlacast_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
