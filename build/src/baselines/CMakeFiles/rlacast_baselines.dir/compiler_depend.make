# Empty compiler generated dependencies file for rlacast_baselines.
# This may be replaced when dependencies are built.
