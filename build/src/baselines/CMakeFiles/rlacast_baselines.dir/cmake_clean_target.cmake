file(REMOVE_RECURSE
  "librlacast_baselines.a"
)
