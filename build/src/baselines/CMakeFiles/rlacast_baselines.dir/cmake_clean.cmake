file(REMOVE_RECURSE
  "CMakeFiles/rlacast_baselines.dir/ltrc.cpp.o"
  "CMakeFiles/rlacast_baselines.dir/ltrc.cpp.o.d"
  "CMakeFiles/rlacast_baselines.dir/mbfc.cpp.o"
  "CMakeFiles/rlacast_baselines.dir/mbfc.cpp.o.d"
  "CMakeFiles/rlacast_baselines.dir/rate_receiver.cpp.o"
  "CMakeFiles/rlacast_baselines.dir/rate_receiver.cpp.o.d"
  "CMakeFiles/rlacast_baselines.dir/rate_sender.cpp.o"
  "CMakeFiles/rlacast_baselines.dir/rate_sender.cpp.o.d"
  "CMakeFiles/rlacast_baselines.dir/rl_rate.cpp.o"
  "CMakeFiles/rlacast_baselines.dir/rl_rate.cpp.o.d"
  "librlacast_baselines.a"
  "librlacast_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlacast_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
