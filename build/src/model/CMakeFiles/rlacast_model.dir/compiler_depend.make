# Empty compiler generated dependencies file for rlacast_model.
# This may be replaced when dependencies are built.
