file(REMOVE_RECURSE
  "CMakeFiles/rlacast_model.dir/drift.cpp.o"
  "CMakeFiles/rlacast_model.dir/drift.cpp.o.d"
  "CMakeFiles/rlacast_model.dir/formulas.cpp.o"
  "CMakeFiles/rlacast_model.dir/formulas.cpp.o.d"
  "CMakeFiles/rlacast_model.dir/two_session_markov.cpp.o"
  "CMakeFiles/rlacast_model.dir/two_session_markov.cpp.o.d"
  "CMakeFiles/rlacast_model.dir/window_walk.cpp.o"
  "CMakeFiles/rlacast_model.dir/window_walk.cpp.o.d"
  "librlacast_model.a"
  "librlacast_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlacast_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
