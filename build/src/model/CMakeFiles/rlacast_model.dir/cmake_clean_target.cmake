file(REMOVE_RECURSE
  "librlacast_model.a"
)
