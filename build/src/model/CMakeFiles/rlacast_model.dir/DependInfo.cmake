
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/drift.cpp" "src/model/CMakeFiles/rlacast_model.dir/drift.cpp.o" "gcc" "src/model/CMakeFiles/rlacast_model.dir/drift.cpp.o.d"
  "/root/repo/src/model/formulas.cpp" "src/model/CMakeFiles/rlacast_model.dir/formulas.cpp.o" "gcc" "src/model/CMakeFiles/rlacast_model.dir/formulas.cpp.o.d"
  "/root/repo/src/model/two_session_markov.cpp" "src/model/CMakeFiles/rlacast_model.dir/two_session_markov.cpp.o" "gcc" "src/model/CMakeFiles/rlacast_model.dir/two_session_markov.cpp.o.d"
  "/root/repo/src/model/window_walk.cpp" "src/model/CMakeFiles/rlacast_model.dir/window_walk.cpp.o" "gcc" "src/model/CMakeFiles/rlacast_model.dir/window_walk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rlacast_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rlacast_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
