# Empty compiler generated dependencies file for rlacast_topo.
# This may be replaced when dependencies are built.
