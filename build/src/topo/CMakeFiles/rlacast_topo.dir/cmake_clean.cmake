file(REMOVE_RECURSE
  "CMakeFiles/rlacast_topo.dir/flat_tree.cpp.o"
  "CMakeFiles/rlacast_topo.dir/flat_tree.cpp.o.d"
  "CMakeFiles/rlacast_topo.dir/flow_rows.cpp.o"
  "CMakeFiles/rlacast_topo.dir/flow_rows.cpp.o.d"
  "CMakeFiles/rlacast_topo.dir/tertiary_tree.cpp.o"
  "CMakeFiles/rlacast_topo.dir/tertiary_tree.cpp.o.d"
  "librlacast_topo.a"
  "librlacast_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlacast_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
