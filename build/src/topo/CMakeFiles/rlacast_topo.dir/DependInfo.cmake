
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/flat_tree.cpp" "src/topo/CMakeFiles/rlacast_topo.dir/flat_tree.cpp.o" "gcc" "src/topo/CMakeFiles/rlacast_topo.dir/flat_tree.cpp.o.d"
  "/root/repo/src/topo/flow_rows.cpp" "src/topo/CMakeFiles/rlacast_topo.dir/flow_rows.cpp.o" "gcc" "src/topo/CMakeFiles/rlacast_topo.dir/flow_rows.cpp.o.d"
  "/root/repo/src/topo/tertiary_tree.cpp" "src/topo/CMakeFiles/rlacast_topo.dir/tertiary_tree.cpp.o" "gcc" "src/topo/CMakeFiles/rlacast_topo.dir/tertiary_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/rlacast_net.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/rlacast_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/rla/CMakeFiles/rlacast_rla.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/rlacast_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rlacast_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rlacast_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
