file(REMOVE_RECURSE
  "librlacast_topo.a"
)
