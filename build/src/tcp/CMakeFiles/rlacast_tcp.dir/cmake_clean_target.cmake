file(REMOVE_RECURSE
  "librlacast_tcp.a"
)
