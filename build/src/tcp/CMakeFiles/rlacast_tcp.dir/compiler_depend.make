# Empty compiler generated dependencies file for rlacast_tcp.
# This may be replaced when dependencies are built.
