file(REMOVE_RECURSE
  "CMakeFiles/rlacast_tcp.dir/reassembly.cpp.o"
  "CMakeFiles/rlacast_tcp.dir/reassembly.cpp.o.d"
  "CMakeFiles/rlacast_tcp.dir/rtt_estimator.cpp.o"
  "CMakeFiles/rlacast_tcp.dir/rtt_estimator.cpp.o.d"
  "CMakeFiles/rlacast_tcp.dir/scoreboard.cpp.o"
  "CMakeFiles/rlacast_tcp.dir/scoreboard.cpp.o.d"
  "CMakeFiles/rlacast_tcp.dir/tcp_receiver.cpp.o"
  "CMakeFiles/rlacast_tcp.dir/tcp_receiver.cpp.o.d"
  "CMakeFiles/rlacast_tcp.dir/tcp_sender.cpp.o"
  "CMakeFiles/rlacast_tcp.dir/tcp_sender.cpp.o.d"
  "librlacast_tcp.a"
  "librlacast_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlacast_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
