
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcp/reassembly.cpp" "src/tcp/CMakeFiles/rlacast_tcp.dir/reassembly.cpp.o" "gcc" "src/tcp/CMakeFiles/rlacast_tcp.dir/reassembly.cpp.o.d"
  "/root/repo/src/tcp/rtt_estimator.cpp" "src/tcp/CMakeFiles/rlacast_tcp.dir/rtt_estimator.cpp.o" "gcc" "src/tcp/CMakeFiles/rlacast_tcp.dir/rtt_estimator.cpp.o.d"
  "/root/repo/src/tcp/scoreboard.cpp" "src/tcp/CMakeFiles/rlacast_tcp.dir/scoreboard.cpp.o" "gcc" "src/tcp/CMakeFiles/rlacast_tcp.dir/scoreboard.cpp.o.d"
  "/root/repo/src/tcp/tcp_receiver.cpp" "src/tcp/CMakeFiles/rlacast_tcp.dir/tcp_receiver.cpp.o" "gcc" "src/tcp/CMakeFiles/rlacast_tcp.dir/tcp_receiver.cpp.o.d"
  "/root/repo/src/tcp/tcp_sender.cpp" "src/tcp/CMakeFiles/rlacast_tcp.dir/tcp_sender.cpp.o" "gcc" "src/tcp/CMakeFiles/rlacast_tcp.dir/tcp_sender.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/rlacast_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rlacast_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rlacast_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
