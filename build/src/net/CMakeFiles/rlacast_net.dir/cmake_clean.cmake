file(REMOVE_RECURSE
  "CMakeFiles/rlacast_net.dir/agent.cpp.o"
  "CMakeFiles/rlacast_net.dir/agent.cpp.o.d"
  "CMakeFiles/rlacast_net.dir/drop_tail.cpp.o"
  "CMakeFiles/rlacast_net.dir/drop_tail.cpp.o.d"
  "CMakeFiles/rlacast_net.dir/link.cpp.o"
  "CMakeFiles/rlacast_net.dir/link.cpp.o.d"
  "CMakeFiles/rlacast_net.dir/network.cpp.o"
  "CMakeFiles/rlacast_net.dir/network.cpp.o.d"
  "CMakeFiles/rlacast_net.dir/node.cpp.o"
  "CMakeFiles/rlacast_net.dir/node.cpp.o.d"
  "CMakeFiles/rlacast_net.dir/packet.cpp.o"
  "CMakeFiles/rlacast_net.dir/packet.cpp.o.d"
  "CMakeFiles/rlacast_net.dir/red.cpp.o"
  "CMakeFiles/rlacast_net.dir/red.cpp.o.d"
  "librlacast_net.a"
  "librlacast_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlacast_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
