# Empty compiler generated dependencies file for rlacast_net.
# This may be replaced when dependencies are built.
