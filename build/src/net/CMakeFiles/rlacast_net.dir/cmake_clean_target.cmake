file(REMOVE_RECURSE
  "librlacast_net.a"
)
