file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_signals.dir/bench_fig8_signals.cpp.o"
  "CMakeFiles/bench_fig8_signals.dir/bench_fig8_signals.cpp.o.d"
  "bench_fig8_signals"
  "bench_fig8_signals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_signals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
