# Empty compiler generated dependencies file for bench_fig8_signals.
# This may be replaced when dependencies are built.
