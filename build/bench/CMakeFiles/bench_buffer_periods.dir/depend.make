# Empty dependencies file for bench_buffer_periods.
# This may be replaced when dependencies are built.
