file(REMOVE_RECURSE
  "CMakeFiles/bench_buffer_periods.dir/bench_buffer_periods.cpp.o"
  "CMakeFiles/bench_buffer_periods.dir/bench_buffer_periods.cpp.o.d"
  "bench_buffer_periods"
  "bench_buffer_periods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_buffer_periods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
