# Empty dependencies file for bench_fig4_drift.
# This may be replaced when dependencies are built.
