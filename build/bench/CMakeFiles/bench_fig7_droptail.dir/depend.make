# Empty dependencies file for bench_fig7_droptail.
# This may be replaced when dependencies are built.
