file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_droptail.dir/bench_fig7_droptail.cpp.o"
  "CMakeFiles/bench_fig7_droptail.dir/bench_fig7_droptail.cpp.o.d"
  "bench_fig7_droptail"
  "bench_fig7_droptail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_droptail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
