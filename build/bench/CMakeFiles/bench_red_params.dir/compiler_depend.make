# Empty compiler generated dependencies file for bench_red_params.
# This may be replaced when dependencies are built.
