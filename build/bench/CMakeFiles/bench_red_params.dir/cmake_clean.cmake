file(REMOVE_RECURSE
  "CMakeFiles/bench_red_params.dir/bench_red_params.cpp.o"
  "CMakeFiles/bench_red_params.dir/bench_red_params.cpp.o.d"
  "bench_red_params"
  "bench_red_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_red_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
