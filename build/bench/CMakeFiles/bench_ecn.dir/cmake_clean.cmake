file(REMOVE_RECURSE
  "CMakeFiles/bench_ecn.dir/bench_ecn.cpp.o"
  "CMakeFiles/bench_ecn.dir/bench_ecn.cpp.o.d"
  "bench_ecn"
  "bench_ecn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ecn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
