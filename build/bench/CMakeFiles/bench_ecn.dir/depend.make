# Empty dependencies file for bench_ecn.
# This may be replaced when dependencies are built.
