# Empty dependencies file for bench_multisession.
# This may be replaced when dependencies are built.
