file(REMOVE_RECURSE
  "CMakeFiles/bench_multisession.dir/bench_multisession.cpp.o"
  "CMakeFiles/bench_multisession.dir/bench_multisession.cpp.o.d"
  "bench_multisession"
  "bench_multisession.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multisession.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
