// Partition tolerance: bounded fairness for the SURVIVORS when the tree
// itself breaks.
//
// Sweeps on the Figure-6 tertiary tree (27 receivers, L1 bottleneck, one
// background TCP per leaf), drop-tail AND RED gateways:
//
//   l3part — partition one level-3 (leaf-group) uplink: 3 receivers dark
//            for a window of 5/10/20 s.
//   l2part — partition one level-2 uplink: 9 receivers dark.
//   crash  — crash the level-3 router (fault::NodeFailure): every interface
//            it owns goes down, INCLUDING its backup uplink, so failover
//            has nothing to flip to and sender-side excision must engage.
//
// Every scenario runs twice: protections OFF (the seed's behavior — the
// session drags its dead subtree through RTO repair for the whole window)
// and ON (topo::FailoverManager backup re-grafting + the RLA sender's
// subtree excision / slow-start re-admission).  The fairness ratio is
// measured against the worst SURVIVOR TCP (background TCPs under the
// partitioned subtree stall with it and would flatter the comparison) and
// checked against the Theorem I/II band; the protected arm must stay in
// band — that check is the bench's exit status.  The unprotected arm
// quantifies the outage window: how long the reach-all frontier stayed
// pinned and what it cost.
//
// --chaos rows ride the structural chaos draws (fault::draw_chaos with
// structural=true) under full record/replay journaling, so partition
// scenarios participate in the bit-identity soak like every other chaos
// row.
//
// Exp-runner based: --jobs N, --replicates R, --json PATH, --smoke,
// --chaos, --record-journal DIR / --replay PATH.  Results tables live in
// EXPERIMENTS.md.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "exp/runner.hpp"
#include "fault/chaos.hpp"
#include "model/formulas.hpp"
#include "replay_support.hpp"
#include "sim/random.hpp"
#include "topo/tertiary_tree.hpp"

using namespace rlacast;

namespace {

/// Leaves darkened by a scenario (the non-survivors): level-3 index i
/// covers leaves 3(i-1)..3i-1, level-2 index j covers 9(j-1)..9j-1.
bool leaf_affected(const std::string& scen, std::size_t leaf) {
  if (scen.empty()) return false;  // chaos rows: rate vs the all-TCP worst
  if (scen == "l2part") return leaf < 9;
  return leaf < 3;  // l3part and crash both target level-3 index 1
}

exp::Metrics tree_metrics(const std::string& scen,
                          const topo::TreeResult& res) {
  exp::Metrics m;
  m.set("rla.thrput_pps", res.rla[0].throughput_pps);
  // Worst TCP over the SURVIVOR leaves only: the TCPs behind the dead
  // uplink starve during the window whether or not the multicast session
  // handles the partition well, so they are no yardstick.
  double wtcp = -1.0;
  for (std::size_t i = 0; i < res.tcps.size(); ++i) {
    if (leaf_affected(scen, i)) continue;
    const double t = res.tcps[i].throughput_pps;
    if (wtcp < 0.0 || t < wtcp) wtcp = t;
  }
  m.set("wtcp_surv.thrput_pps", wtcp);
  m.set("fairness_ratio",
        wtcp > 0.0 ? res.rla[0].throughput_pps / wtcp : 0.0);
  m.set("rla.cwnd", res.rla[0].avg_cwnd);
  m.set("failover.events", static_cast<double>(res.failover_events));
  m.set("failover.reverts", static_cast<double>(res.failover_reverts));
  m.set("failover.rerouted", static_cast<double>(res.packets_rerouted));
  m.set("subtree.excisions", static_cast<double>(res.subtree_excisions));
  m.set("subtree.readmissions",
        static_cast<double>(res.subtree_readmissions));
  m.set("subtree.ramp_rexmits", static_cast<double>(res.ramp_rexmits));
  m.set("t_excise", res.time_to_excise);
  m.set("t_readmit", res.time_to_readmit);
  m.set("survivor_goodput_pps", res.survivor_goodput_pps);
  m.set("rla.active_final", static_cast<double>(res.active_receivers_final));
  m.set("jain.min", res.min_jain);
  m.set("jain.mean", res.mean_jain);
  m.set("watchdog_ok", res.watchdog_ok ? 1.0 : 0.0);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  if (opt.smoke) {
    opt.duration = 80.0;
    opt.warmup = 20.0;
    opt.chaos_cases = std::min(opt.chaos_cases, 3);
  }
  bench::ReplayCoordinator replay("partition", opt);
  bench::print_header(
      "Partition tolerance: failover re-grafting + subtree excision "
      "vs. structural failure",
      opt);

  const char* gateways[] = {"droptail", "red"};
  const char* scenarios[] = {"l3part", "l2part", "crash"};
  const double durations_full[] = {5.0, 10.0, 20.0};
  const double durations_smoke[] = {10.0};

  exp::Grid grid;
  grid.master_seed(opt.seed).replicates(opt.replicates);
  for (const char* gw : gateways) {
    for (const char* scen : scenarios) {
      const auto* durs = opt.smoke ? durations_smoke : durations_full;
      const std::size_t n_durs =
          opt.smoke ? std::size(durations_smoke) : std::size(durations_full);
      for (std::size_t d = 0; d < n_durs; ++d)
        for (int prot = 0; prot <= 1; ++prot)
          grid.add_case(std::string(scen) + "-" + gw,
                        exp::Point{}
                            .set("gw", gw)
                            .set("scen", scen)
                            .set("dur", durs[d])
                            .set("prot", static_cast<double>(prot)));
    }
  }
  // Chaos soak rows: randomized structural failures (and the usual
  // feedback-plane hostility) with both protections armed.
  const int chaos_rows = opt.chaos ? opt.chaos_cases : (opt.smoke ? 2 : 0);
  for (int c = 0; c < chaos_rows; ++c)
    grid.add_case("chaos",
                  exp::Point{}.set("scenario", static_cast<double>(c)));

  const exp::RunFn run = [&replay, &opt](const exp::RunSpec& spec) {
    topo::TreeConfig cfg;
    cfg.bottleneck = topo::TreeCase::kL1;
    cfg.duration = opt.duration;
    cfg.warmup = opt.warmup;
    cfg.seed = spec.seed;
    cfg.watchdog = true;
    // Continuous Jain telemetry over {RLA, background TCPs}: min_jain is
    // the worst sliding window, which for unprotected rows lands inside
    // the outage and quantifies how unfair the stall gets.
    cfg.fairness.window = 10.0;
    cfg.fairness.start = cfg.warmup;
    std::string scen = spec.point.get("scen", "");

    if (scen.empty()) {
      // Chaos row: draw hostility + structural failure from the scenario's
      // own stream (seed-folded, like bench_adversary's soak).
      cfg.gateway = topo::GatewayType::kRed;
      const int scenario =
          static_cast<int>(spec.point.get_double("scenario", 0.0));
      const std::uint64_t chaos_seed = sim::SeedSequence(spec.seed).seed_for(
          "chaos/" + std::to_string(scenario));
      fault::ChaosConfig chaos_cfg;
      chaos_cfg.structural = true;
      const fault::ChaosDraw draw =
          fault::draw_chaos(chaos_cfg, chaos_seed, /*n_receivers=*/27);
      cfg.leaf_fault = draw.leaf_fault;
      cfg.ack_fault = draw.ack_fault;
      cfg.adversaries = draw.adversaries();
      cfg.rla.defense.enabled = true;
      // The frontier watchdog stays off here (as in bench_adversary's soak):
      // after re-admission a rejoiner legitimately pins the frontier while it
      // closes its residual gap, which is indistinguishable from a pinning
      // attack to the watchdog — enabling it quarantines honest rejoiners
      // mid-catch-up.  Reconciling the two is tracked in ROADMAP.md.
      cfg.rla.silent_drop_after = 10.0;
      if (draw.structural != fault::StructuralKind::kNone) {
        topo::SubtreeOutage so;
        so.start = draw.partition_start;
        so.end = draw.partition_start + draw.partition_len;
        switch (draw.structural) {
          case fault::StructuralKind::kMidPartition:
            so.level = 2;
            so.index = 1 + draw.structural_index % 3;
            break;
          case fault::StructuralKind::kRouterCrash:
            so.router_crash = true;
            [[fallthrough]];
          case fault::StructuralKind::kLeafPartition:
          default:
            so.level = 3;
            so.index = 1 + draw.structural_index % 9;
            break;
        }
        // scen stays empty: the survivor yardstick assumes index 1, but
        // chaos rows draw any index, so they rate against the all-TCP worst.
        cfg.partitions.push_back(so);
      }
      cfg.backup_paths = true;
      cfg.rla.degrade.enabled = true;
    } else {
      cfg.gateway = spec.point.get("gw", "droptail") == "red"
                        ? topo::GatewayType::kRed
                        : topo::GatewayType::kDropTail;
      topo::SubtreeOutage so;
      so.level = scen == "l2part" ? 2 : 3;
      so.index = 1;
      so.router_crash = scen == "crash";
      so.start = cfg.warmup + 0.25 * (cfg.duration - cfg.warmup);
      so.end = so.start + spec.point.get_double("dur", 10.0);
      cfg.partitions.push_back(so);
      if (spec.point.get_double("prot", 0.0) > 0.0) {
        cfg.backup_paths = true;
        cfg.rla.degrade.enabled = true;
      }
    }

    auto session = replay.session(spec);
    cfg.instrument = session->instrument();
    const auto res = topo::run_tertiary_tree(cfg);
    session->finish();
    if (!res.watchdog_ok)
      throw std::runtime_error("watchdog: " + res.watchdog_report);
    return tree_metrics(scen, res);
  };
  if (replay.replay_mode()) return replay.run_replay(run);

  exp::RunnerOptions ropts = opt.runner_options();
  if (opt.chaos) ropts.heartbeat_seconds = 30.0;
  replay.configure_runner(ropts);
  exp::Runner runner(ropts);
  const exp::Results results = runner.run(grid, run);

  const auto t2 = model::theorem2_droptail_bounds(27);
  const auto t1 = model::theorem1_red_bounds(27);
  std::printf(
      "theorem bands, n=27: drop-tail (%.2f, %.0f)  RED (%.2f, %.1f)\n\n",
      t2.lo, t2.hi, t1.lo, t1.hi);

  std::printf("%-12s %-38s %9s %9s %8s %9s %6s %7s %8s\n", "case", "params",
              "RLA/WTCPs", "RLA pps", "t_excise", "t_readmit", "flips",
              "rerout", "in-band");
  int prot_bands_checked = 0, prot_bands_in = 0;
  for (const auto& r : results.runs()) {
    if (r.spec.replicate != 0) continue;
    if (!r.ok) {
      std::printf("%-12s %-38s  FAILED: %s\n", r.spec.name.c_str(),
                  r.spec.point.id().c_str(), r.error.c_str());
      continue;
    }
    const bool red = r.spec.name == "chaos" ||
                     r.spec.point.get("gw", "") == "red";
    const auto& band = red ? t1 : t2;
    const double ratio = r.metrics.get("fairness_ratio", 0.0);
    const bool inband = band.contains(ratio);
    // Band gate: deterministic protected rows only.  Chaos rows stack
    // random adversaries + ACK impairments on top of the partition and can
    // legitimately sit out of band; their contract is watchdog + replay.
    const bool prot = r.spec.name != "chaos" &&
                      r.spec.point.get_double("prot", 0.0) > 0.0;
    if (prot) {
      ++prot_bands_checked;
      if (inband) ++prot_bands_in;
    }
    std::printf("%-12s %-38s %9.2f %9.1f %8.2f %9.2f %6.0f %7.0f %8s\n",
                r.spec.name.c_str(), r.spec.point.id().c_str(), ratio,
                r.metrics.get("rla.thrput_pps", 0.0),
                r.metrics.get("t_excise", -1.0),
                r.metrics.get("t_readmit", -1.0),
                r.metrics.get("failover.events", 0.0),
                r.metrics.get("failover.rerouted", 0.0),
                inband ? "yes" : "NO");
  }

  // --- protection headline --------------------------------------------------
  // Mean survivor-fairness ratio, protected vs unprotected, per scenario.
  std::printf("\nprotection effect (replicate 0, mean over gateways/durations):\n");
  std::printf("%-8s %12s %12s %12s %12s %10s %10s\n", "scen", "off:RLA/WTCP",
              "on:RLA/WTCP", "off:minJain", "on:minJain", "excisions",
              "readmits");
  for (const char* scen : scenarios) {
    double sum[2] = {0, 0}, jain[2] = {0, 0};
    int n[2] = {0, 0};
    double excis = 0, readm = 0;
    for (const auto& r : results.runs()) {
      if (r.spec.replicate != 0 || !r.ok) continue;
      if (r.spec.point.get("scen", "") != scen) continue;
      const int prot = r.spec.point.get_double("prot", 0.0) > 0.0 ? 1 : 0;
      sum[prot] += r.metrics.get("fairness_ratio", 0.0);
      jain[prot] += r.metrics.get("jain.min", 0.0);
      ++n[prot];
      if (prot) {
        excis += r.metrics.get("subtree.excisions", 0.0);
        readm += r.metrics.get("subtree.readmissions", 0.0);
      }
    }
    if (n[0] + n[1] == 0) continue;
    std::printf("%-8s %12.2f %12.2f %12.3f %12.3f %10.0f %10.0f\n", scen,
                n[0] ? sum[0] / n[0] : 0.0, n[1] ? sum[1] / n[1] : 0.0,
                n[0] ? jain[0] / n[0] : 0.0, n[1] ? jain[1] / n[1] : 0.0,
                excis, readm);
  }
  std::printf(
      "\nprotected rows in band: %d/%d (bench fails unless all are)\n",
      prot_bands_in, prot_bands_checked);

  std::vector<std::pair<std::string, std::string>> extra;
  if (opt.chaos) extra.emplace_back("mode", "chaos");
  const bool io_ok = bench::finish_grid_output(
      "partition", opt, results, runner.last_wall_seconds(), std::move(extra));

  double min_prot_ratio = -1.0, max_t_excise = -1.0, max_t_readmit = -1.0;
  for (const auto& r : results.runs()) {
    if (!r.ok) continue;
    if (r.spec.point.get_double("prot", 0.0) > 0.0) {
      const double ratio = r.metrics.get("fairness_ratio", 0.0);
      if (min_prot_ratio < 0.0 || ratio < min_prot_ratio)
        min_prot_ratio = ratio;
    }
    max_t_excise = std::max(max_t_excise, r.metrics.get("t_excise", -1.0));
    max_t_readmit = std::max(max_t_readmit, r.metrics.get("t_readmit", -1.0));
  }
  const bool traj_ok = bench::write_trajectory(
      opt, "partition", runner.last_wall_seconds(),
      {{"min_protected_ratio", min_prot_ratio},
       {"max_time_to_excise_s", max_t_excise},
       {"max_time_to_readmit_s", max_t_readmit}});

  return (results.num_errors() || prot_bands_in != prot_bands_checked ||
          !io_ok || !traj_ok)
             ? 1
             : 0;
}
