// Reproduces Figure 9: "Simulation results with RED gateways".
//
// Identical setup to Figure 7 but with RED gateways (min_th 5, max_th 15)
// and no random sender overhead (RED eliminates phase effects on its own).
//
// Expected shape (paper values, 2900 s): RLA thrput 118.0 / 103.7 / 88.3 /
// 141.0 / 209.2 across the five cases; fairness closer to absolute than the
// drop-tail runs, especially case 1 (Theorem I: a=1/3, b=sqrt(3n)).
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "model/formulas.hpp"
#include "topo/tertiary_tree.hpp"

using namespace rlacast;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Figure 9: multicast sharing with TCP, RED gateways",
                      opt);

  const topo::TreeCase cases[] = {
      topo::TreeCase::kL1, topo::TreeCase::kL3All, topo::TreeCase::kL4All,
      topo::TreeCase::kL4Some, topo::TreeCase::kL21};

  std::vector<bench::CaseColumn> cols;
  for (const auto c : cases) {
    topo::TreeConfig cfg;
    cfg.bottleneck = c;
    cfg.gateway = topo::GatewayType::kRed;
    cfg.phase_randomization = false;  // not needed with RED (§5.1)
    cfg.duration = opt.duration;
    cfg.warmup = opt.warmup;
    cfg.seed = opt.seed;
    const auto res = topo::run_tertiary_tree(cfg);
    cols.push_back({topo::tree_case_name(c), res.rla[0], res.worst_tcp(),
                    res.best_tcp()});
  }

  std::printf("%s\n", bench::render_fig7_style_table(cols).c_str());

  const auto bounds = model::theorem1_red_bounds(27);
  std::printf("Theorem I audit (RED, n=27): a=%.2f b=%.2f\n", bounds.lo,
              bounds.hi);
  for (std::size_t i = 0; i < cols.size(); ++i) {
    const double ratio =
        cols[i].rla.throughput_pps / cols[i].wtcp.throughput_pps;
    std::printf("  case %zu (%s): RLA/WTCP = %.2f  -> %s\n", i + 1,
                cols[i].name.c_str(), ratio,
                bounds.contains(ratio) ? "within bounds" : "OUT OF BOUNDS");
  }
  return 0;
}
