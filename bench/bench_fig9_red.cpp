// Reproduces Figure 9: "Simulation results with RED gateways".
//
// Identical setup to Figure 7 but with RED gateways (min_th 5, max_th 15)
// and no random sender overhead (RED eliminates phase effects on its own).
// Cases run as an exp:: grid: `--jobs N` parallelizes, `--replicates R`
// adds derived-seed repeats with mean ±95% CI, `--json PATH` emits JSON.
//
// Expected shape (paper values, 2900 s): RLA thrput 118.0 / 103.7 / 88.3 /
// 141.0 / 209.2 across the five cases; fairness closer to absolute than the
// drop-tail runs, especially case 1 (Theorem I: a=1/3, b=sqrt(3n)).
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "exp/runner.hpp"
#include "model/formulas.hpp"
#include "replay_support.hpp"
#include "topo/tertiary_tree.hpp"

using namespace rlacast;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  if (opt.smoke) {
    // CI-sized pass for the golden-output regression guard
    // (tests/golden_bench_test.cmake): short run, full case list.
    opt.duration = 40.0;
    opt.warmup = 10.0;
  }
  bench::ReplayCoordinator replay("fig9_red", opt);
  bench::print_header("Figure 9: multicast sharing with TCP, RED gateways",
                      opt);

  const topo::TreeCase cases[] = {
      topo::TreeCase::kL1, topo::TreeCase::kL3All, topo::TreeCase::kL4All,
      topo::TreeCase::kL4Some, topo::TreeCase::kL21};

  exp::Grid grid;
  grid.master_seed(opt.seed).replicates(opt.replicates);
  for (const auto c : cases)
    grid.add_case(topo::tree_case_name(c),
                  exp::Point{}.set("case", static_cast<std::int64_t>(c)));

  const exp::RunFn run = [&](const exp::RunSpec& spec) {
    topo::TreeConfig cfg;
    cfg.bottleneck = static_cast<topo::TreeCase>(spec.point.get_int("case", 0));
    cfg.gateway = topo::GatewayType::kRed;
    cfg.phase_randomization = false;  // not needed with RED (§5.1)
    cfg.duration = opt.duration;
    cfg.warmup = opt.warmup;
    cfg.seed = spec.seed;
    auto session = replay.session(spec);
    cfg.instrument = session->instrument();
    const auto res = topo::run_tertiary_tree(cfg);
    session->finish();
    return bench::metrics_from_column(
        {spec.name, res.rla[0], res.worst_tcp(), res.best_tcp()});
  };
  if (replay.replay_mode()) return replay.run_replay(run);

  exp::RunnerOptions ropts = opt.runner_options();
  replay.configure_runner(ropts);
  exp::Runner runner(ropts);
  const exp::Results results = runner.run(grid, run);
  const auto cols = bench::replicate0_columns(results);

  std::printf("%s\n", bench::render_fig7_style_table(cols).c_str());

  const auto bounds = model::theorem1_red_bounds(27);
  std::printf("Theorem I audit (RED, n=27): a=%.2f b=%.2f\n", bounds.lo,
              bounds.hi);
  for (std::size_t i = 0; i < cols.size(); ++i) {
    const double ratio =
        cols[i].rla.throughput_pps / cols[i].wtcp.throughput_pps;
    std::printf("  case %zu (%s): RLA/WTCP = %.2f  -> %s\n", i + 1,
                cols[i].name.c_str(), ratio,
                bounds.contains(ratio) ? "within bounds" : "OUT OF BOUNDS");
  }
  const bool io_ok = bench::finish_grid_output("fig9_red", opt, results,
                            runner.last_wall_seconds(),
                            {{"gateway", "red"}});
  return (results.num_errors() || !io_ok) ? 1 : 0;
}
