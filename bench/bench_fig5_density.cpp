// Reproduces Figure 5: "Density plot of the occurrence of (cwnd1, cwnd2)".
//
// Two reproductions of the same figure:
//  (a) the §4.4 Markov-chain Monte Carlo (27 receivers per session, pipe 40,
//      desired operating point (20, 20)), and
//  (b) the full packet-level simulation: two RLA sessions sharing the
//      case-3 tertiary tree, sampling (cwnd1, cwnd2) once per 100 ms.
// Both should show the probability mass concentrated around the desired
// equal-share operating point.
#include <cstdio>
#include <memory>

#include "common.hpp"
#include "model/two_session_markov.hpp"
#include "sim/simulator.hpp"
#include "topo/tertiary_tree.hpp"

using namespace rlacast;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Figure 5: joint density of two competing cwnds", opt);

  // ---- (a) Markov-model Monte Carlo -----------------------------------------
  model::TwoSessionParams mp;
  mp.n = 27;
  mp.pipe = 40.0;
  mp.steps = opt.full ? 5'000'000 : 1'000'000;
  const auto mres =
      model::run_two_session_markov(mp, sim::Rng(opt.seed + 1000));
  std::printf("(a) Markov model, n=%d, pipe=%.0f, desired point (20,20)\n",
              mp.n, mp.pipe);
  std::printf("    mean cwnd1 = %.2f, mean cwnd2 = %.2f\n", mres.mean_w1,
              mres.mean_w2);
  std::printf("    mass within +-10 of (20,20): %.1f%%   visits: %lld\n\n",
              100.0 * mres.mass_near_fair,
              static_cast<long long>(mres.fair_point_visits));
  std::printf("%s\n", mres.density.render_ascii(40).c_str());

  // ---- (b) full simulation ----------------------------------------------------
  // Two RLA sessions on the case-3 tree; sample windows during the run via
  // a custom harness (run_tertiary_tree reports only averages, so we run
  // the builder's pieces inline at a smaller scale).
  std::printf("(b) packet-level simulation: two RLA sessions, case-3 tree\n");
  topo::TreeConfig cfg;
  cfg.bottleneck = topo::TreeCase::kL4All;
  cfg.multicast_sessions = 2;
  cfg.duration = opt.duration;
  cfg.warmup = opt.warmup;
  cfg.seed = opt.seed;
  cfg.window_sample_period = 0.1;  // sample (cwnd1, cwnd2) at 10 Hz
  const auto res = topo::run_tertiary_tree(cfg);
  std::printf("    avg cwnd session1 = %.1f, session2 = %.1f (paper: "
              "19.9 / 20.1)\n",
              res.rla[0].avg_cwnd, res.rla[1].avg_cwnd);
  std::printf("    thrput  session1 = %.1f, session2 = %.1f pkt/s (paper: "
              "65.1 / 65.9)\n",
              res.rla[0].throughput_pps, res.rla[1].throughput_pps);

  const double span =
      2.0 * std::max(res.rla[0].avg_cwnd, res.rla[1].avg_cwnd) + 10.0;
  stats::Histogram2D joint(span, span, 60, 60);
  for (const auto& row : res.window_samples)
    if (row.size() == 2) joint.add(row[0], row[1]);
  const auto [mx, my] = joint.mode();
  std::printf("    %zu joint samples; modal bin near (%.1f, %.1f); mass "
              "within +-%.0f of it: %.0f%%\n\n",
              res.window_samples.size(), mx, my, span / 4.0,
              100.0 * joint.mass_near(mx, my, span / 4.0));
  std::printf("%s\n", joint.render_ascii(40).c_str());
  std::printf("shape check: both plots concentrate around the equal-share\n"
              "diagonal point, the paper's Figure 5 signature.\n");
  return 0;
}
