// Adversary tolerance: bounded fairness when the *receivers* misbehave.
//
// The Theorem I/II bands assume honest feedback. This bench sweeps lying
// receivers on the Figure-6 tertiary tree (L1 bottleneck, 27 receivers, one
// background TCP each) — adversary kind × adversary count × census defense
// on/off, for drop-tail AND RED gateways — and reports the headline number:
// how many lying receivers the defended vs. undefended sender tolerates
// before the fairness ratio RLA/WTCP leaves its theorem band.
//
//   storm    — signal-storm (NACK implosion) receivers fabricate loss
//              episodes at their reported frontier; undefended, each fake
//              hole is a cut opportunity and the session starves.
//   inflate  — srtt inflators poison srtt_max (hurts everyone else's
//              pthresh under k > 0 and the forced-cut/rexmit guards).
//   deflate  — srtt deflators claim ~0 RTT (the liar under-listens).
//   mute     — ACK withholding freezes the reach-all frontier.
//   flipflop — storm/mute alternation, the quarantine-hysteresis stressor.
//
// Defense on = cc::CensusDefenseParams (median signal-rate quarantine,
// median/MAD srtt clamp) + the silent-drop liveness guard. Defense off is
// the paper's honest-receiver sender, byte-identical to the seed.
//
// --chaos: soak mode. Each replicate draws a randomized scenario (kind,
// count, placement, reverse-path ACK loss/dup/jitter, forward leaf loss)
// from its own seed via fault::draw_chaos on the "chaos-scenario" stream —
// deterministic per seed, so chaos rows record/replay bit-identically —
// and runs under sim::Watchdog invariants; crashes are contained by
// --isolate's fork sandbox. Results tables live in EXPERIMENTS.md.
#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "common.hpp"
#include "exp/runner.hpp"
#include "fault/chaos.hpp"
#include "model/formulas.hpp"
#include "sim/random.hpp"
#include "replay_support.hpp"
#include "topo/tertiary_tree.hpp"

using namespace rlacast;

namespace {

struct KindRow {
  const char* name;
  fault::AdversaryKind kind;
};

constexpr KindRow kKinds[] = {
    {"storm", fault::AdversaryKind::kSignalStorm},
    {"inflate", fault::AdversaryKind::kSrttInflate},
    {"deflate", fault::AdversaryKind::kSrttDeflate},
    {"mute", fault::AdversaryKind::kMute},
    {"flipflop", fault::AdversaryKind::kFlipFlop},
};

fault::AdversaryKind kind_by_name(const std::string& name) {
  for (const auto& k : kKinds)
    if (name == k.name) return k.kind;
  throw std::runtime_error("unknown adversary kind: " + name);
}

/// `count` receiver indices spread across the 27-leaf tree (stride layout),
/// so adversaries land in different G2/G3 subtrees instead of clustering.
std::vector<int> spread_indices(int count, int n_receivers) {
  std::vector<int> idx;
  idx.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    idx.push_back(i * n_receivers / std::max(1, count));
  return idx;
}

exp::Metrics tree_metrics(const topo::TreeResult& res) {
  exp::Metrics m;
  m.set("rla.thrput_pps", res.rla[0].throughput_pps);
  m.set("wtcp.thrput_pps", res.worst_tcp().throughput_pps);
  m.set("btcp.thrput_pps", res.best_tcp().throughput_pps);
  const double ratio =
      res.worst_tcp().throughput_pps > 0.0
          ? res.rla[0].throughput_pps / res.worst_tcp().throughput_pps
          : 0.0;
  m.set("fairness_ratio", ratio);
  m.set("rla.cwnd", res.rla[0].avg_cwnd);
  m.set("rla.signals", static_cast<double>(res.rla[0].cong_signals));
  m.set("rla.wnd_cuts", static_cast<double>(res.rla[0].window_cuts));
  m.set("adv.acks_tampered", static_cast<double>(res.adv_acks_tampered));
  m.set("adv.acks_withheld", static_cast<double>(res.adv_acks_withheld));
  m.set("adv.extra_acks", static_cast<double>(res.adv_extra_acks));
  m.set("adv.fake_holes", static_cast<double>(res.adv_fake_holes));
  m.set("census.quarantines", static_cast<double>(res.census_quarantines));
  m.set("census.strikeouts", static_cast<double>(res.census_strikeouts));
  m.set("rla.silent_drops", static_cast<double>(res.rla_silent_drops));
  m.set("rla.active_final", static_cast<double>(res.active_receivers_final));
  m.set("fault.wire_losses", static_cast<double>(res.fault_wire_losses));
  m.set("fault.duplicates", static_cast<double>(res.fault_duplicates));
  m.set("failover.events", static_cast<double>(res.failover_events));
  m.set("subtree.excisions", static_cast<double>(res.subtree_excisions));
  m.set("subtree.readmissions",
        static_cast<double>(res.subtree_readmissions));
  m.set("watchdog_ok", res.watchdog_ok ? 1.0 : 0.0);
  return m;
}

void apply_defense(topo::TreeConfig& cfg) {
  cfg.rla.defense.enabled = true;
  // Liveness half of the defense: mutes are indistinguishable from crashed
  // receivers, and the crash protection already sheds those.
  cfg.rla.silent_drop_after = 10.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  if (opt.smoke) {
    opt.duration = 80.0;
    opt.warmup = 20.0;
    if (opt.chaos) opt.chaos_cases = std::min(opt.chaos_cases, 4);
  }
  bench::ReplayCoordinator replay("adversary", opt);
  bench::print_header(
      opt.chaos
          ? "Adversary chaos soak: randomized feedback-plane hostility"
          : "Adversary tolerance: lying receivers vs the census defense",
      opt);

  const char* gateways_full[] = {"droptail", "red"};
  const char* gateways_smoke[] = {"red"};
  const char* kinds_smoke[] = {"storm", "inflate"};
  const int counts_full[] = {1, 3, 6, 9};
  const int counts_smoke[] = {3};

  exp::Grid grid;
  grid.master_seed(opt.seed).replicates(opt.replicates);
  if (opt.chaos) {
    for (int c = 0; c < opt.chaos_cases; ++c)
      for (int defense = 0; defense <= 1; ++defense)
        grid.add_case("chaos", exp::Point{}
                                   .set("scenario", static_cast<double>(c))
                                   .set("defense", static_cast<double>(defense)));
  } else {
    const auto* gws = opt.smoke ? gateways_smoke : gateways_full;
    const std::size_t n_gw =
        opt.smoke ? std::size(gateways_smoke) : std::size(gateways_full);
    const auto* counts = opt.smoke ? counts_smoke : counts_full;
    const std::size_t n_counts =
        opt.smoke ? std::size(counts_smoke) : std::size(counts_full);
    for (std::size_t g = 0; g < n_gw; ++g) {
      for (int defense = 0; defense <= 1; ++defense) {
        // Honest baseline (n = 0): the defended arm must not tax it.
        grid.add_case(std::string("base-") + gws[g],
                      exp::Point{}
                          .set("gw", gws[g])
                          .set("defense", static_cast<double>(defense)));
        for (const auto& k : kKinds) {
          if (opt.smoke) {
            bool keep = false;
            for (const char* sk : kinds_smoke) keep |= k.name == std::string(sk);
            if (!keep) continue;
          }
          for (std::size_t c = 0; c < n_counts; ++c)
            grid.add_case(std::string(k.name) + "-" + gws[g],
                          exp::Point{}
                              .set("gw", gws[g])
                              .set("kind", k.name)
                              .set("n", static_cast<double>(counts[c]))
                              .set("defense", static_cast<double>(defense)));
        }
      }
    }
  }

  const bool chaos = opt.chaos;
  const exp::RunFn run = [&replay, &opt, chaos](const exp::RunSpec& spec) {
    topo::TreeConfig cfg;
    cfg.bottleneck = topo::TreeCase::kL1;
    cfg.duration = opt.duration;
    cfg.warmup = opt.warmup;
    cfg.seed = spec.seed;
    cfg.watchdog = true;
    const bool defense = spec.point.get_double("defense", 0.0) > 0.0;

    if (chaos) {
      cfg.gateway = topo::GatewayType::kRed;
      // Replicate 0 of every case shares the grid's master seed (legacy
      // byte-compat), so the scenario index must be folded in explicitly or
      // every chaos case would draw the same hostility.
      const int scenario =
          static_cast<int>(spec.point.get_double("scenario", 0.0));
      const std::uint64_t chaos_seed = sim::SeedSequence(spec.seed).seed_for(
          "chaos/" + std::to_string(scenario));
      // Structural draws on: a chaos replicate may additionally partition a
      // subtree uplink or crash a router (draw.structural).  The four extra
      // draws are appended at the END of the chaos stream, so the hostility
      // mix of historical scenarios is unchanged for a given seed.
      fault::ChaosConfig chaos_cfg;
      chaos_cfg.structural = true;
      const fault::ChaosDraw draw =
          fault::draw_chaos(chaos_cfg, chaos_seed, /*n_receivers=*/27);
      cfg.leaf_fault = draw.leaf_fault;
      cfg.ack_fault = draw.ack_fault;
      cfg.adversaries = draw.adversaries();
      if (draw.structural != fault::StructuralKind::kNone) {
        topo::SubtreeOutage so;
        so.start = draw.partition_start;
        so.end = draw.partition_start + draw.partition_len;
        switch (draw.structural) {
          case fault::StructuralKind::kMidPartition:
            so.level = 2;
            so.index = 1 + draw.structural_index % 3;
            break;
          case fault::StructuralKind::kRouterCrash:
            so.router_crash = true;
            [[fallthrough]];
          case fault::StructuralKind::kLeafPartition:
          default:
            so.level = 3;
            so.index = 1 + draw.structural_index % 9;
            break;
        }
        cfg.partitions.push_back(so);
        // Both protections ride along: failover re-grafts what it can
        // (partitions), excision/re-admission owns the rest (crashes).
        cfg.backup_paths = true;
        cfg.rla.degrade.enabled = true;
      }
    } else {
      cfg.gateway = spec.point.get("gw", "droptail") == "red"
                        ? topo::GatewayType::kRed
                        : topo::GatewayType::kDropTail;
      const int n_adv = static_cast<int>(spec.point.get_double("n", 0.0));
      if (n_adv > 0) {
        fault::AdversaryModel model;
        model.kind = kind_by_name(spec.point.get("kind", "storm"));
        model.start = 0.5 * cfg.warmup;  // lie once the session converged
        for (const int idx : spread_indices(n_adv, 27))
          cfg.adversaries.emplace_back(idx, model);
      }
    }
    if (defense) apply_defense(cfg);

    auto session = replay.session(spec);
    cfg.instrument = session->instrument();
    const auto res = topo::run_tertiary_tree(cfg);
    session->finish();
    if (!res.watchdog_ok)
      throw std::runtime_error("watchdog: " + res.watchdog_report);
    return tree_metrics(res);
  };
  if (replay.replay_mode()) return replay.run_replay(run);

  exp::RunnerOptions ropts = opt.runner_options();
  if (opt.chaos) ropts.heartbeat_seconds = 30.0;
  replay.configure_runner(ropts);
  exp::Runner runner(ropts);
  const exp::Results results = runner.run(grid, run);

  const auto t2 = model::theorem2_droptail_bounds(27);
  const auto t1 = model::theorem1_red_bounds(27);
  std::printf(
      "theorem bands, n=27: drop-tail (%.2f, %.0f)  RED (%.2f, %.1f)\n\n",
      t2.lo, t2.hi, t1.lo, t1.hi);

  auto in_band = [&](const exp::RunResult& r) {
    const bool red = opt.chaos || r.spec.point.get("gw", "") == "red";
    const double ratio = r.metrics.get("fairness_ratio", 0.0);
    return (red ? t1 : t2).contains(ratio);
  };

  // --- per-run table -------------------------------------------------------
  std::printf("%-14s %-44s %9s %9s %6s %8s\n", "case", "params", "RLA/WTCP",
              "RLA pps", "quar", "in-band");
  for (const auto& r : results.runs()) {
    if (r.spec.replicate != 0) continue;
    if (!r.ok) {
      std::printf("%-14s %-44s  FAILED: %s\n", r.spec.name.c_str(),
                  r.spec.point.id().c_str(), r.error.c_str());
      continue;
    }
    std::printf("%-14s %-44s %9.2f %9.1f %6.0f %8s\n", r.spec.name.c_str(),
                r.spec.point.id().c_str(),
                r.metrics.get("fairness_ratio", 0.0),
                r.metrics.get("rla.thrput_pps", 0.0),
                r.metrics.get("census.quarantines", 0.0),
                in_band(r) ? "yes" : "NO");
  }

  if (!opt.chaos) {
    // --- headline: tolerated adversary count, defended vs undefended -------
    const auto* gws = opt.smoke ? gateways_smoke : gateways_full;
    const std::size_t n_gw =
        opt.smoke ? std::size(gateways_smoke) : std::size(gateways_full);
    std::printf(
        "\nadversary tolerance (largest swept count with RLA/WTCP still in "
        "band; -1 = even honest baseline out):\n");
    std::printf("%-10s %-10s %12s %12s\n", "gateway", "kind", "undefended",
                "defended");
    for (std::size_t g = 0; g < n_gw; ++g) {
      for (const auto& k : kKinds) {
        int tolerated[2] = {-1, -1};
        for (const auto& r : results.runs()) {
          if (r.spec.replicate != 0 || !r.ok) continue;
          if (r.spec.point.get("gw", "") != gws[g]) continue;
          const bool defended = r.spec.point.get_double("defense", 0.0) > 0.0;
          const std::string kind = r.spec.point.get("kind", "");
          if (kind.empty()) {  // honest baseline row: count 0
            if (in_band(r)) tolerated[defended] = std::max(tolerated[defended], 0);
            continue;
          }
          if (kind != k.name) continue;
          if (in_band(r))
            tolerated[defended] = std::max(
                tolerated[defended],
                static_cast<int>(r.spec.point.get_double("n", 0.0)));
        }
        if (tolerated[0] == -1 && tolerated[1] == -1) continue;
        std::printf("%-10s %-10s %12d %12d\n", gws[g], k.name, tolerated[0],
                    tolerated[1]);
      }
    }
  } else {
    // --- chaos soak summary -------------------------------------------------
    int ok_runs = 0, band_runs[2] = {0, 0}, total[2] = {0, 0};
    for (const auto& r : results.runs()) {
      if (!r.ok) continue;
      ++ok_runs;
      const int defended = r.spec.point.get_double("defense", 0.0) > 0.0;
      ++total[defended];
      if (in_band(r)) ++band_runs[defended];
    }
    std::printf(
        "\nchaos soak: %d/%zu runs clean; in Theorem-I band: "
        "undefended %d/%d, defended %d/%d\n",
        ok_runs, results.runs().size(), band_runs[0], total[0], band_runs[1],
        total[1]);
    double failovers = 0, excisions = 0, readmissions = 0;
    for (const auto& r : results.runs()) {
      if (!r.ok) continue;
      failovers += r.metrics.get("failover.events", 0.0);
      excisions += r.metrics.get("subtree.excisions", 0.0);
      readmissions += r.metrics.get("subtree.readmissions", 0.0);
    }
    std::printf(
        "structural self-healing: %.0f failover flips, %.0f excisions, "
        "%.0f re-admissions across the soak\n",
        failovers, excisions, readmissions);
  }

  std::vector<std::pair<std::string, std::string>> extra;
  if (opt.chaos) extra.emplace_back("mode", "chaos");
  const bool io_ok = bench::finish_grid_output(
      "adversary", opt, results, runner.last_wall_seconds(), std::move(extra));
  return (results.num_errors() || !io_ok) ? 1 : 0;
}
