// Robustness curves: bounded fairness when the network itself misbehaves.
//
// Three sweeps on the Figure-6 tertiary tree (27 receivers, one background
// TCP per receiver, L1 bottleneck), for drop-tail AND RED gateways:
//
//   loss   — Bernoulli wire loss on every 100 ms leaf link, rates 0..5%:
//            fairness ratio (RLA/WTCP) vs loss rate. Non-congestion loss
//            feeds the same SACK/census machinery as congestion loss, so
//            this measures how far random corruption drags the session
//            below its Theorem I/II band.
//   burst  — a Gilbert–Elliott bursty channel (802.11-style) at matched
//            average loss, to separate burstiness from rate.
//   churn  — exponential leave/rejoin membership churn at mean intervals
//            60/30/10 s: fairness vs churn rate.
//   silent — one receiver crashes mid-run (keeps receiving, never ACKs);
//            the sender sheds it via silent_drop_after and the watchdog
//            verifies no invariant breaks and the window never freezes.
//   kexp   — generalized-pthresh exponent sweep under 2% Bernoulli wire
//            loss, on a heterogeneous-RTT tree (leaf delays 100..200 ms;
//            with equal RTTs the exponent cancels): f(x) = x^k for k in
//            {0, 0.5, 1, 2, 4} (k = 0 is the paper's equal-RTT RLA).
//            Random loss inflates the troubled census symmetrically, so
//            the question is whether any k recovers the Theorem I/II band
//            that the plain loss sweep loses — or whether the exponent
//            only redistributes cuts across RTT classes without changing
//            the aggregate rate.
//
// Exp-runner based: `--jobs N`, `--replicates R`, `--json PATH`,
// `--timeout S` (per-run wall-clock kill), `--smoke` (CI-sized subset).
// Results tables live in EXPERIMENTS.md.
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "exp/runner.hpp"
#include "model/formulas.hpp"
#include "replay_support.hpp"
#include "topo/tertiary_tree.hpp"

using namespace rlacast;

namespace {

exp::Metrics tree_metrics(const std::string&, const topo::TreeResult& res) {
  exp::Metrics m;
  m.set("rla.thrput_pps", res.rla[0].throughput_pps);
  m.set("wtcp.thrput_pps", res.worst_tcp().throughput_pps);
  m.set("btcp.thrput_pps", res.best_tcp().throughput_pps);
  const double ratio = res.worst_tcp().throughput_pps > 0.0
                           ? res.rla[0].throughput_pps /
                                 res.worst_tcp().throughput_pps
                           : 0.0;
  m.set("fairness_ratio", ratio);
  m.set("rla.cwnd", res.rla[0].avg_cwnd);
  m.set("rla.signals", static_cast<double>(res.rla[0].cong_signals));
  m.set("rla.wnd_cuts", static_cast<double>(res.rla[0].window_cuts));
  m.set("rla.forced_cuts", static_cast<double>(res.rla[0].forced_cuts));
  m.set("fault.wire_losses", static_cast<double>(res.fault_wire_losses));
  m.set("fault.duplicates", static_cast<double>(res.fault_duplicates));
  m.set("churn.leaves", static_cast<double>(res.churn_leaves));
  m.set("churn.joins", static_cast<double>(res.churn_joins));
  m.set("rla.silent_drops", static_cast<double>(res.rla_silent_drops));
  m.set("rla.active_final", static_cast<double>(res.active_receivers_final));
  m.set("watchdog_ok", res.watchdog_ok ? 1.0 : 0.0);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  if (opt.smoke) {
    // CI-sized pass: short runs, thinned sweep, but every scenario kind.
    opt.duration = 80.0;
    opt.warmup = 20.0;
  }
  bench::ReplayCoordinator replay("robustness", opt);
  bench::print_header(
      "Robustness: fairness under loss, bursty channels, churn, and crashes",
      opt);

  const char* gateways[] = {"droptail", "red"};
  const double loss_rates_full[] = {0.0, 0.005, 0.01, 0.02, 0.05};
  const double loss_rates_smoke[] = {0.0, 0.02};
  const double churn_means_full[] = {60.0, 30.0, 10.0};
  const double churn_means_smoke[] = {30.0};
  const double kexp_full[] = {0.0, 0.5, 1.0, 2.0, 4.0};
  const double kexp_smoke[] = {0.0, 2.0};

  exp::Grid grid;
  grid.master_seed(opt.seed).replicates(opt.replicates);
  for (const char* gw : gateways) {
    const auto* loss = opt.smoke ? loss_rates_smoke : loss_rates_full;
    const std::size_t n_loss =
        opt.smoke ? std::size(loss_rates_smoke) : std::size(loss_rates_full);
    for (std::size_t i = 0; i < n_loss; ++i)
      grid.add_case(std::string("loss-") + gw,
                    exp::Point{}.set("gw", gw).set("loss", loss[i]));
    grid.add_case(std::string("burst-") + gw,
                  exp::Point{}.set("gw", gw).set("ge", "1"));
    const auto* churn = opt.smoke ? churn_means_smoke : churn_means_full;
    const std::size_t n_churn = opt.smoke ? std::size(churn_means_smoke)
                                          : std::size(churn_means_full);
    for (std::size_t i = 0; i < n_churn; ++i)
      grid.add_case(std::string("churn-") + gw,
                    exp::Point{}.set("gw", gw).set("mean", churn[i]));
    grid.add_case(std::string("silent-") + gw,
                  exp::Point{}.set("gw", gw).set("silent", "1"));
    const auto* kexp = opt.smoke ? kexp_smoke : kexp_full;
    const std::size_t n_kexp =
        opt.smoke ? std::size(kexp_smoke) : std::size(kexp_full);
    for (std::size_t i = 0; i < n_kexp; ++i)
      grid.add_case(std::string("kexp-") + gw, exp::Point{}
                                                   .set("gw", gw)
                                                   .set("k", kexp[i])
                                                   .set("loss", 0.02));
  }

  const exp::RunFn run = [&](const exp::RunSpec& spec) {
    topo::TreeConfig cfg;
    cfg.bottleneck = topo::TreeCase::kL1;
    cfg.gateway = spec.point.get("gw", "droptail") == "red"
                      ? topo::GatewayType::kRed
                      : topo::GatewayType::kDropTail;
    cfg.duration = opt.duration;
    cfg.warmup = opt.warmup;
    cfg.seed = spec.seed;
    cfg.watchdog = true;

    const double loss = spec.point.get_double("loss", 0.0);
    if (loss > 0.0) cfg.leaf_fault.loss_p = loss;
    if (spec.point.has("ge")) {
      // Bursty channel at ~1% average loss: Bad dwell ~5 packets, in the
      // Bad state 1/20 of the time, loss 0.2 while Bad.
      cfg.leaf_fault.ge.p_good_to_bad = 0.01;
      cfg.leaf_fault.ge.p_bad_to_good = 0.2;
      cfg.leaf_fault.ge.loss_bad = 0.2;
    }
    const double churn_mean = spec.point.get_double("mean", 0.0);
    if (churn_mean > 0.0) {
      cfg.churn_mean_interval = churn_mean;
      cfg.churn_rejoin_after = 5.0;
    }
    const double kexp = spec.point.get_double("k", -1.0);
    if (kexp >= 0.0) {
      cfg.rla.rtt_exponent = kexp;
      // Heterogeneous leaf RTTs (100..200 ms): on the homogeneous tree
      // srtt_i == srtt_max and f(x) = x^k is a no-op for every k.
      cfg.leaf_delay_spread = 1.0;
    }
    if (spec.point.has("silent")) {
      cfg.silent_receiver = 0;
      cfg.silent_at = cfg.warmup + 0.25 * (cfg.duration - cfg.warmup);
      cfg.rla.silent_drop_after = 10.0;
    }

    auto session = replay.session(spec);
    cfg.instrument = session->instrument();
    const auto res = topo::run_tertiary_tree(cfg);
    session->finish();
    if (!res.watchdog_ok)
      throw std::runtime_error("watchdog: " + res.watchdog_report);
    return tree_metrics(spec.name, res);
  };
  if (replay.replay_mode()) return replay.run_replay(run);

  exp::RunnerOptions ropts = opt.runner_options();
  replay.configure_runner(ropts);
  exp::Runner runner(ropts);
  const exp::Results results = runner.run(grid, run);

  // --- fairness-vs-impairment tables -------------------------------------
  const auto t2 = model::theorem2_droptail_bounds(27);
  const auto t1 = model::theorem1_red_bounds(27);
  std::printf("theorem bands, n=27: drop-tail (%.2f, %.0f)  RED (%.2f, %.1f)\n\n",
              t2.lo, t2.hi, t1.lo, t1.hi);
  std::printf("%-16s %-26s %10s %10s %8s\n", "case", "params", "RLA/WTCP",
              "RLA pps", "in-band");
  for (const auto& r : results.runs()) {
    if (r.spec.replicate != 0) continue;
    if (!r.ok) {
      std::printf("%-16s %-26s  FAILED: %s\n", r.spec.name.c_str(),
                  r.spec.point.id().c_str(), r.error.c_str());
      continue;
    }
    const double ratio = r.metrics.get("fairness_ratio", 0.0);
    const bool red = r.spec.point.get("gw", "") == "red";
    const auto& band = red ? t1 : t2;
    std::printf("%-16s %-26s %10.2f %10.1f %8s\n", r.spec.name.c_str(),
                r.spec.point.id().c_str(), ratio,
                r.metrics.get("rla.thrput_pps", 0.0),
                band.contains(ratio) ? "yes" : "NO");
  }

  // --- pthresh-exponent verdict -------------------------------------------
  // Does any f(x) = x^k recover the band under 2% wire loss?
  for (const char* gw : gateways) {
    int inband = 0, total = 0;
    double best_ratio = 0.0, best_k = 0.0;
    const auto& band = std::string(gw) == "red" ? t1 : t2;
    for (const auto& r : results.runs()) {
      if (r.spec.replicate != 0 || !r.ok) continue;
      if (r.spec.name != std::string("kexp-") + gw) continue;
      ++total;
      const double ratio = r.metrics.get("fairness_ratio", 0.0);
      if (band.contains(ratio)) ++inband;
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_k = r.spec.point.get_double("k", 0.0);
      }
    }
    if (total > 0)
      std::printf(
          "\nkexp verdict (%s, 2%% wire loss, leaf RTTs 100-200ms): "
          "%d/%d exponents in band; best ratio %.2f at k=%g\n",
          gw, inband, total, best_ratio, best_k);
  }

  // --- robustness outcome summary ----------------------------------------
  std::printf("\nrobustness outcomes (replicate 0):\n");
  for (const auto& r : results.runs()) {
    if (r.spec.replicate != 0 || !r.ok) continue;
    const double wl = r.metrics.get("fault.wire_losses", 0.0);
    const double lv = r.metrics.get("churn.leaves", 0.0);
    const double sd = r.metrics.get("rla.silent_drops", 0.0);
    if (wl == 0.0 && lv == 0.0 && sd == 0.0) continue;
    std::printf(
        "  %-16s %-26s wire_losses=%.0f leaves=%.0f joins=%.0f "
        "silent_drops=%.0f active=%.0f watchdog=%s\n",
        r.spec.name.c_str(), r.spec.point.id().c_str(), wl, lv,
        r.metrics.get("churn.joins", 0.0), sd,
        r.metrics.get("rla.active_final", 0.0),
        r.metrics.get("watchdog_ok", 0.0) > 0.0 ? "ok" : "VIOLATED");
  }

  const bool io_ok =
      bench::finish_grid_output("robustness", opt, results,
                                runner.last_wall_seconds(), {});
  return (results.num_errors() || !io_ok) ? 1 : 0;
}
