// Engine microbenchmark: raw scheduler throughput and scenario wall-clock.
//
// Four cases, run as an exp:: grid (--jobs / --replicates / --json work as
// in the figure benches; wall-clock metrics are inherently machine-dependent
// and land in results/bench_engine.json to track the perf trajectory):
//
//   schedule_dispatch  schedule+dispatch cycles against a deep pending heap
//                      (the steady-state cost of a busy simulation);
//   cancel_heavy       schedule/cancel churn — the retransmission-timer
//                      pattern where most armed events never fire;
//   timer_reschedule   sim::Timer re-arm churn (every ACK restarts the
//                      rexmit timer; almost no timer ever expires);
//   link_hop           packets pumped through one Link hop (serialize +
//                      propagate events) — the per-packet engine overhead;
//   fig7_L1            the Figure 7 L1 drop-tail scenario at quarter
//                      duration — end-to-end wall-clock of a real workload.
//
// Events/sec and wall seconds are printed per case; --json records them.
#include <chrono>
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "exp/runner.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "topo/tertiary_tree.hpp"

using namespace rlacast;

namespace {

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

/// schedule+dispatch cycles with `depth` events always pending, mirroring a
/// busy simulation's steady state.
exp::Metrics run_schedule_dispatch(std::int64_t n) {
  sim::Scheduler s;
  std::uint64_t sink = 0;
  constexpr int kDepth = 4096;
  for (int i = 0; i < kDepth; ++i)
    s.schedule_at(1e9 + static_cast<double>(i), [&sink] { ++sink; });
  const double t0 = now_seconds();
  for (std::int64_t i = 0; i < n; ++i) {
    s.schedule_at(s.now() + 1.0, [&sink] { ++sink; });
    s.run_one();
  }
  const double wall = now_seconds() - t0;
  s.run_all();
  exp::Metrics m;
  m.set("events", static_cast<double>(n));
  m.set("wall_s", wall);
  m.set("events_per_sec", static_cast<double>(n) / wall);
  return m;
}

/// Most armed events are cancelled before firing (rexmit-timer pattern):
/// per iteration one schedule+cancel pair plus one schedule+dispatch.
exp::Metrics run_cancel_heavy(std::int64_t n) {
  sim::Scheduler s;
  std::uint64_t sink = 0;
  const double t0 = now_seconds();
  for (std::int64_t i = 0; i < n; ++i) {
    const sim::EventId doomed =
        s.schedule_at(s.now() + 10.0, [&sink] { ++sink; });
    s.schedule_at(s.now() + 1.0, [&sink] { ++sink; });
    s.cancel(doomed);
    s.run_one();
  }
  const double wall = now_seconds() - t0;
  s.run_all();
  exp::Metrics m;
  m.set("events", static_cast<double>(2 * n));
  m.set("wall_s", wall);
  m.set("events_per_sec", static_cast<double>(2 * n) / wall);
  return m;
}

/// sim::Timer re-arm churn: 64 timers re-armed round-robin, with a periodic
/// dispatch pass so the heap drains like a real run.
exp::Metrics run_timer_reschedule(std::int64_t n) {
  sim::Simulator sim;
  std::uint64_t fires = 0;
  constexpr int kTimers = 64;
  std::vector<std::unique_ptr<sim::Timer>> timers;
  timers.reserve(kTimers);
  for (int i = 0; i < kTimers; ++i)
    timers.push_back(
        std::make_unique<sim::Timer>(sim, [&fires] { ++fires; }));
  const double t0 = now_seconds();
  for (std::int64_t i = 0; i < n; ++i)
    timers[static_cast<std::size_t>(i % kTimers)]->schedule(10.0);
  sim.run_all();
  const double wall = now_seconds() - t0;
  exp::Metrics m;
  m.set("events", static_cast<double>(n));
  m.set("wall_s", wall);
  m.set("events_per_sec", static_cast<double>(n) / wall);
  return m;
}

/// Sink that counts deliveries on the far side of the measured hop.
class CountingSink final : public net::Agent {
 public:
  void on_receive(const net::Packet&) override { ++received; }
  std::uint64_t received = 0;
};

/// `n` packets through one 1 Gbit/s hop: per-packet engine cost of the
/// serialize + propagation event pair.
exp::Metrics run_link_hop(std::int64_t n) {
  sim::Simulator sim;
  net::Network net{sim};
  const net::NodeId a = net.add_node();
  const net::NodeId b = net.add_node();
  net::LinkConfig cfg;
  cfg.bandwidth_bps = 1e9;
  cfg.delay = sim::microseconds(50);
  cfg.buffer_pkts = 64;
  net.connect(a, b, cfg);
  net.build_routes();
  CountingSink sink;
  net.attach(b, 1, &sink);

  net::Packet p;
  p.src = a;
  p.dst = b;
  p.dst_port = 1;
  p.size_bytes = net::kDataPacketBytes;
  // Offered load just under line rate so the queue never overflows: inject
  // in bursts of 32 and drain.
  const double t0 = now_seconds();
  std::int64_t injected = 0;
  while (injected < n) {
    for (int burst = 0; burst < 32 && injected < n; ++burst, ++injected) {
      p.seq = injected;
      net.inject(p);
    }
    sim.run_all();
  }
  const double wall = now_seconds() - t0;
  exp::Metrics m;
  m.set("packets", static_cast<double>(sink.received));
  m.set("events", static_cast<double>(sim.scheduler().dispatched()));
  m.set("wall_s", wall);
  m.set("events_per_sec",
        static_cast<double>(sim.scheduler().dispatched()) / wall);
  // Engine counters: the hot path must stay on the inline/slab fast paths.
  const stats::EngineCounters& ec = sim.scheduler().counters();
  m.set("callback_heap_fallbacks",
        static_cast<double>(ec.callback_heap_fallbacks));
  m.set("heap_hiwater", static_cast<double>(ec.heap_hiwater));
  m.set("slab_capacity", static_cast<double>(ec.slab_capacity));
  return m;
}

/// The Figure 7 L1 drop-tail case at quarter duration: end-to-end wall-clock
/// of the real multicast+TCP workload the sweeps fan out.
exp::Metrics run_fig7_scenario(const bench::Options& opt, std::uint64_t seed) {
  topo::TreeConfig cfg;
  cfg.bottleneck = topo::TreeCase::kL1;
  cfg.gateway = topo::GatewayType::kDropTail;
  cfg.duration = opt.duration / 4.0;
  cfg.warmup = opt.warmup / 4.0;
  cfg.seed = seed;
  const double t0 = now_seconds();
  const auto res = topo::run_tertiary_tree(cfg);
  const double wall = now_seconds() - t0;
  exp::Metrics m;
  m.set("sim_s", cfg.duration);
  m.set("wall_s", wall);
  m.set("sim_s_per_wall_s", cfg.duration / wall);
  m.set("rla_thrput_pps", res.rla.empty() ? 0.0 : res.rla[0].throughput_pps);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Engine microbenchmark: scheduler + link hot path", opt);

  const std::int64_t kOps = opt.full ? 8'000'000 : 2'000'000;

  exp::Grid grid;
  grid.master_seed(opt.seed).replicates(opt.replicates);
  grid.add_case("schedule_dispatch");
  grid.add_case("cancel_heavy");
  grid.add_case("timer_reschedule");
  grid.add_case("link_hop");
  grid.add_case("fig7_L1");

  const exp::RunFn run = [&](const exp::RunSpec& spec) {
    if (spec.name == "schedule_dispatch") return run_schedule_dispatch(kOps);
    if (spec.name == "cancel_heavy") return run_cancel_heavy(kOps);
    if (spec.name == "timer_reschedule") return run_timer_reschedule(kOps);
    if (spec.name == "link_hop") return run_link_hop(kOps / 4);
    return run_fig7_scenario(opt, spec.seed);
  };

  // Perf cases must not contend for cores: run sequentially regardless of
  // --jobs (the flag still controls replicate fan-out in the JSON schema).
  exp::RunnerOptions ropts = opt.runner_options();
  ropts.jobs = 1;
  exp::Runner runner(ropts);
  const exp::Results results = runner.run(grid, run);

  for (const auto& r : results.runs()) {
    if (r.spec.replicate != 0) continue;
    if (!r.ok) {
      std::printf("%-18s ERROR: %s\n", r.spec.name.c_str(), r.error.c_str());
      continue;
    }
    std::printf("%-18s", r.spec.name.c_str());
    for (const auto& [k, v] : r.metrics.rows()) {
      if (k == "events_per_sec" || k == "sim_s_per_wall_s")
        std::printf("  %s=%.3g", k.c_str(), v);
      else if (k == "wall_s")
        std::printf("  wall=%.3fs", v);
      else if (k == "callback_heap_fallbacks" || k == "heap_hiwater" ||
               k == "slab_capacity")
        std::printf("  %s=%g", k.c_str(), v);
    }
    std::printf("\n");
  }

  // Perf-trajectory snapshot: headline throughput per case (replicate 0),
  // tracked across PRs via the repo-root BENCH_engine.json.
  std::vector<std::pair<std::string, double>> traj;
  for (const auto& r : results.runs()) {
    if (r.spec.replicate != 0 || !r.ok) continue;
    for (const auto& [k, v] : r.metrics.rows())
      if (k == "events_per_sec" || k == "sim_s_per_wall_s")
        traj.emplace_back(r.spec.name + "." + k, v);
  }

  const bool io_ok =
      bench::finish_grid_output("engine", opt, results,
                                runner.last_wall_seconds(), {}) &
      bench::write_trajectory(opt, "engine", runner.last_wall_seconds(), traj);
  return (results.num_errors() || !io_ok) ? 1 : 0;
}
