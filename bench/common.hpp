// Shared helpers for the reproduction benches: command-line handling
// (--full for paper-length 3000 s runs, --seed, --duration, and the
// experiment-runner flags --jobs / --replicates / --json), the Figure
// 7/9/10-style table assembly, and the glue between exp:: grids and the
// paper's CaseColumn rows.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "exp/runner.hpp"
#include "stats/table.hpp"
#include "topo/flow_rows.hpp"

namespace rlacast::bench {

struct Options {
  /// Default runs are time-scaled (shape-preserving) for quick iteration;
  /// --full reproduces the paper's 3000 s / 100 s warm-up schedule.
  bool full = false;
  double duration = 240.0;
  double warmup = 60.0;
  std::uint64_t seed = 1;
  /// Experiment-runner controls (benches migrated onto exp::Runner only).
  int jobs = 1;            // --jobs N; 0 = hardware concurrency
  int replicates = 1;      // --replicates R; seeds derived per replicate
  std::string json_path;   // --json PATH; empty = no JSON output
  double run_timeout = 0.0;  // --timeout S; per-run wall-clock limit, 0 = off
  int retries = 0;           // --retries N; extra attempts on TransientError
  bool smoke = false;        // --smoke; CI-sized quick pass (bench-defined)
  /// Chaos/soak mode (benches that support it, e.g. bench_adversary): each
  /// replicate draws a randomized adversary + impairment scenario from its
  /// own seed (fault::draw_chaos) and runs under watchdog invariants.
  bool chaos = false;         // --chaos
  int chaos_cases = 12;       // --chaos-cases N; scenarios per defense arm

  /// Determinism / crash-containment controls (replay-wired benches only;
  /// see src/replay/ and bench/replay_support.hpp).
  std::string record_journal_dir;  // --record-journal DIR; journal every run
  std::string replay_path;         // --replay PATH; verify one run, then exit
  std::uint64_t checkpoint_events = 20000;  // --checkpoint-events N
  bool isolate = false;            // --isolate; fork-sandbox every run
  std::string crash_dir = "results/crashes";  // --crash-dir DIR
  double isolate_cpu = 0.0;        // --isolate-cpu S; RLIMIT_CPU per run
  std::size_t isolate_mem_mb = 0;  // --isolate-mem MB; RLIMIT_AS per run

  /// --trajectory PATH: after the run, write a one-object JSON snapshot of
  /// the bench's health metrics (throughput, peak RSS, fairness minima) to
  /// PATH. tools/regen_results.sh points this at the repo-root
  /// BENCH_<name>.json files so their git history forms a per-PR
  /// performance trajectory.
  std::string trajectory_path;

  double measured_seconds() const { return duration - warmup; }

  /// Worker count after resolving --jobs 0 to the hardware parallelism.
  int resolved_jobs() const;

  /// Runner configured from the flags. Progress lines only appear when the
  /// batch is actually parallel or replicated AND stderr is a terminal, so
  /// piped transcripts (tools/regen_results.sh) stay deterministic and
  /// default single-replicate output is byte-compatible with the pre-runner
  /// benches.
  exp::RunnerOptions runner_options() const;
};

/// Parses --full, --seed N, --duration S, --warmup S, --jobs N,
/// --replicates R, --json PATH, --timeout S, --retries N, --smoke.
/// Unknown flags abort with a usage message.
Options parse_options(int argc, char** argv);

/// Adds the RLA row block of Figures 7/9 (one column per case) to a table.
struct CaseColumn {
  std::string name;
  topo::FlowRow rla;
  topo::FlowRow wtcp;
  topo::FlowRow btcp;
};

/// Renders the full three-block (RLA / WTCP / BTCP) table of Figures 7/9.
std::string render_fig7_style_table(const std::vector<CaseColumn>& cases);

/// Prints a standard bench header with reproduction context.
void print_header(const std::string& title, const Options& opt);

/// Flattens a Figure 7/9/10-style case column into exp metric rows
/// ("rla.thrput_pps", "wtcp.cwnd", ...). Inverse: column_from_metrics.
exp::Metrics metrics_from_column(const CaseColumn& c);
CaseColumn column_from_metrics(std::string name, const exp::Metrics& m);

/// Replicate-0 CaseColumn per case, in grid order — the rows the legacy
/// single-replicate tables print. A case whose replicate-0 run errored is
/// skipped with a warning on stderr.
std::vector<CaseColumn> replicate0_columns(const exp::Results& results);

/// Shared post-processing for migrated benches: prints the replicate
/// aggregate table (mean ±95% CI) when --replicates > 1, reports error rows,
/// and writes results.json when --json was given. `spec_extra` adds
/// bench-specific spec fields (gateway type, topology variant, ...) to the
/// JSON; duration/warmup are always included. Returns false when a requested
/// JSON write failed (benches turn that into a nonzero exit).
bool finish_grid_output(
    const std::string& experiment, const Options& opt, const exp::Results& results,
    double wall_seconds,
    std::vector<std::pair<std::string, std::string>> spec_extra = {});

/// Peak resident set size of this process so far, in MiB (ru_maxrss).
double peak_rss_mib();

/// Writes the --trajectory snapshot: {"experiment", "config", "metrics"}
/// with flat numeric metrics. No-op (returns true) when path is empty;
/// returns false and warns on I/O failure. peak_rss_mib and wall seconds
/// are always included alongside the bench-specific entries;
/// `sender_bytes_per_receiver` is the standard sender-memory headline
/// (bench_scale) and is emitted only when non-negative.
bool write_trajectory(
    const Options& opt, const std::string& experiment, double wall_seconds,
    const std::vector<std::pair<std::string, double>>& metrics,
    double sender_bytes_per_receiver = -1.0);

}  // namespace rlacast::bench
