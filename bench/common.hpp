// Shared helpers for the reproduction benches: command-line handling
// (--full for paper-length 3000 s runs, --seed, --duration) and the
// Figure 7/9/10-style table assembly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/table.hpp"
#include "topo/flow_rows.hpp"

namespace rlacast::bench {

struct Options {
  /// Default runs are time-scaled (shape-preserving) for quick iteration;
  /// --full reproduces the paper's 3000 s / 100 s warm-up schedule.
  bool full = false;
  double duration = 240.0;
  double warmup = 60.0;
  std::uint64_t seed = 1;

  double measured_seconds() const { return duration - warmup; }
};

/// Parses --full, --seed N, --duration S, --warmup S. Unknown flags abort
/// with a usage message.
Options parse_options(int argc, char** argv);

/// Adds the RLA row block of Figures 7/9 (one column per case) to a table.
struct CaseColumn {
  std::string name;
  topo::FlowRow rla;
  topo::FlowRow wtcp;
  topo::FlowRow btcp;
};

/// Renders the full three-block (RLA / WTCP / BTCP) table of Figures 7/9.
std::string render_fig7_style_table(const std::vector<CaseColumn>& cases);

/// Prints a standard bench header with reproduction context.
void print_header(const std::string& title, const Options& opt);

}  // namespace rlacast::bench
