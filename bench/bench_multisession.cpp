// Reproduces §5.2: "Multiple Multicast Sessions".
//
// Two overlapping RLA sessions from the same sender node to the same 27
// receivers on the case-3 topology (all leaf links congested).  The paper
// reports throughputs of 65.1 / 65.9 pkt/s and average windows 19.9 / 20.1:
// near-perfect sharing.  This bench prints the same two rows and their
// ratio; `--replicates R --jobs N` repeats the scenario with derived seeds
// in parallel and `--json PATH` emits the batch.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "exp/runner.hpp"
#include "replay_support.hpp"
#include "stats/table.hpp"
#include "topo/tertiary_tree.hpp"

using namespace rlacast;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  if (opt.smoke) {
    // CI-sized pass for the golden-output regression guard
    // (tests/golden_bench_test.cmake): short run, full case list.
    opt.duration = 40.0;
    opt.warmup = 10.0;
  }
  bench::ReplayCoordinator replay("multisession", opt);
  bench::print_header("Section 5.2: two overlapping multicast sessions", opt);

  exp::Grid grid;
  grid.master_seed(opt.seed).replicates(opt.replicates);
  grid.add_case("two-sessions", exp::Point{}.set("sessions", std::int64_t{2}));

  const exp::RunFn run = [&](const exp::RunSpec& spec) {
    topo::TreeConfig cfg;
    cfg.bottleneck = topo::TreeCase::kL4All;
    cfg.gateway = topo::GatewayType::kDropTail;
    cfg.multicast_sessions =
        static_cast<int>(spec.point.get_int("sessions", 2));
    cfg.duration = opt.duration;
    cfg.warmup = opt.warmup;
    cfg.seed = spec.seed;
    auto session = replay.session(spec);
    cfg.instrument = session->instrument();
    const auto res = topo::run_tertiary_tree(cfg);
    session->finish();
    exp::Metrics m;
    for (std::size_t i = 0; i < res.rla.size(); ++i) {
      const std::string p = "s" + std::to_string(i + 1);
      const auto& r = res.rla[i];
      m.set(p + ".thrput_pps", r.throughput_pps);
      m.set(p + ".cwnd", r.avg_cwnd);
      m.set(p + ".rtt_s", r.avg_rtt);
      m.set(p + ".cong_signals", static_cast<double>(r.cong_signals));
      m.set(p + ".wnd_cuts", static_cast<double>(r.window_cuts));
    }
    m.set("thrput_ratio",
          res.rla[0].throughput_pps / res.rla[1].throughput_pps);
    return m;
  };

  if (replay.replay_mode()) return replay.run_replay(run);

  exp::RunnerOptions ropts = opt.runner_options();
  replay.configure_runner(ropts);
  exp::Runner runner(ropts);
  const exp::Results results = runner.run(grid, run);
  const exp::RunResult* rep0 = results.replicate0("two-sessions");
  if (!rep0) {
    std::fprintf(stderr, "run failed: %s\n",
                 results.runs().empty() ? "no runs"
                                        : results.runs()[0].error.c_str());
    return 1;
  }

  stats::Table t({"session", "thrput (pkt/s)", "cwnd", "RTT (s)",
                  "#cong signals", "#wnd cut"});
  for (int i = 1; i <= 2; ++i) {
    const std::string p = "s" + std::to_string(i);
    t.add_row({std::to_string(i),
               stats::Table::num(rep0->metrics.get(p + ".thrput_pps")),
               stats::Table::num(rep0->metrics.get(p + ".cwnd")),
               stats::Table::num(rep0->metrics.get(p + ".rtt_s"), 3),
               std::to_string(static_cast<std::uint64_t>(
                   rep0->metrics.get(p + ".cong_signals"))),
               std::to_string(static_cast<std::uint64_t>(
                   rep0->metrics.get(p + ".wnd_cuts")))});
  }
  std::printf("%s\n", t.render().c_str());

  const double ratio = rep0->metrics.get("thrput_ratio");
  std::printf("throughput ratio session1/session2 = %.3f (paper: ~0.99)\n",
              ratio);
  std::printf("multicast fairness: %s\n",
              std::abs(std::log(ratio)) < std::log(1.3)
                  ? "sessions share equally (within 30%)"
                  : "WARNING: sessions diverge");
  const bool io_ok = bench::finish_grid_output("multisession", opt, results,
                            runner.last_wall_seconds(),
                            {{"topology", "L4All"}, {"sessions", "2"}});
  return (results.num_errors() || !io_ok) ? 1 : 0;
}
