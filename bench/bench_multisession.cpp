// Reproduces §5.2: "Multiple Multicast Sessions".
//
// Two overlapping RLA sessions from the same sender node to the same 27
// receivers on the case-3 topology (all leaf links congested).  The paper
// reports throughputs of 65.1 / 65.9 pkt/s and average windows 19.9 / 20.1:
// near-perfect sharing.  This bench prints the same two rows and their
// ratio.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "stats/table.hpp"
#include "topo/tertiary_tree.hpp"

using namespace rlacast;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Section 5.2: two overlapping multicast sessions", opt);

  topo::TreeConfig cfg;
  cfg.bottleneck = topo::TreeCase::kL4All;
  cfg.gateway = topo::GatewayType::kDropTail;
  cfg.multicast_sessions = 2;
  cfg.duration = opt.duration;
  cfg.warmup = opt.warmup;
  cfg.seed = opt.seed;
  const auto res = topo::run_tertiary_tree(cfg);

  stats::Table t({"session", "thrput (pkt/s)", "cwnd", "RTT (s)",
                  "#cong signals", "#wnd cut"});
  for (std::size_t i = 0; i < res.rla.size(); ++i) {
    const auto& r = res.rla[i];
    t.add_row({std::to_string(i + 1), stats::Table::num(r.throughput_pps),
               stats::Table::num(r.avg_cwnd), stats::Table::num(r.avg_rtt, 3),
               std::to_string(r.cong_signals), std::to_string(r.window_cuts)});
  }
  std::printf("%s\n", t.render().c_str());

  const double ratio =
      res.rla[0].throughput_pps / res.rla[1].throughput_pps;
  std::printf("throughput ratio session1/session2 = %.3f (paper: ~0.99)\n",
              ratio);
  std::printf("multicast fairness: %s\n",
              std::abs(std::log(ratio)) < std::log(1.3)
                  ? "sessions share equally (within 30%)"
                  : "WARNING: sessions diverge");
  return 0;
}
