#include "replay_support.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <utility>

namespace rlacast::bench {

namespace {

/// Mirrors the exp runner's crash-report naming so a run's journal and its
/// crash report sort next to each other.
std::string sanitize_for_filename(const std::string& id) {
  std::string out;
  out.reserve(id.size());
  for (char c : id) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '.' ||
                      c == '_';
    out += keep ? c : '_';
  }
  return out;
}

std::string journal_path_for(const std::string& dir, const exp::RunSpec& spec) {
  return dir + "/" + sanitize_for_filename(spec.id()) + ".journal";
}

}  // namespace

std::function<void(sim::Simulator&)> ReplaySession::instrument() {
  replay::RunObserver* obs = recorder_ ? static_cast<replay::RunObserver*>(
                                             recorder_.get())
                                       : verifier_;
  if (obs == nullptr) return {};
  return [obs](sim::Simulator& sim) { sim.set_observer(obs); };
}

void ReplaySession::finish() {
  if (finished_) return;
  finished_ = true;
  if (recorder_) recorder_->finalize();
  if (verifier_ != nullptr) verifier_->finalize();
}

ReplayCoordinator::ReplayCoordinator(std::string experiment, Options& opt)
    : experiment_(std::move(experiment)), opt_(opt) {
  if (!opt_.replay_path.empty()) {
    if (!journal_.load(opt_.replay_path)) {
      std::fprintf(stderr, "replay: cannot load journal %s\n",
                   opt_.replay_path.c_str());
      std::exit(2);
    }
    const std::string bench = journal_.meta_value("bench");
    if (!bench.empty() && bench != experiment_) {
      std::fprintf(stderr,
                   "replay: journal %s was recorded by bench '%s', not '%s'\n",
                   opt_.replay_path.c_str(), bench.c_str(),
                   experiment_.c_str());
      std::exit(2);
    }
    // Re-create the run's effective schedule from the journal so the replay
    // matches regardless of this invocation's --smoke/--full/--duration.
    if (journal_.has_meta("duration"))
      opt_.duration = std::atof(journal_.meta_value("duration").c_str());
    if (journal_.has_meta("warmup"))
      opt_.warmup = std::atof(journal_.meta_value("warmup").c_str());
    if (journal_.has_meta("smoke"))
      opt_.smoke = journal_.meta_value("smoke") == "1";
    if (journal_.has_meta("full"))
      opt_.full = journal_.meta_value("full") == "1";
    if (journal_.has_meta("master_seed"))
      opt_.seed = std::strtoull(journal_.meta_value("master_seed").c_str(),
                                nullptr, 10);
    return;
  }
  record_dir_ = opt_.record_journal_dir;
  if (record_dir_.empty() && opt_.isolate && !opt_.crash_dir.empty())
    record_dir_ = opt_.crash_dir + "/journals";
  if (!record_dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(record_dir_, ec);
    if (ec) {
      std::fprintf(stderr, "replay: cannot create journal dir %s: %s\n",
                   record_dir_.c_str(), ec.message().c_str());
      std::exit(2);
    }
  }
}

std::string ReplayCoordinator::journal_path(const exp::RunSpec& spec) const {
  return journal_path_for(record_dir_, spec);
}

std::unique_ptr<ReplaySession> ReplayCoordinator::session(
    const exp::RunSpec& spec) {
  auto s = std::unique_ptr<ReplaySession>(new ReplaySession());
  if (replay_mode()) {
    s->verifier_ = verifier_.get();  // null outside run_replay: inert
    return s;
  }
  if (!record_mode()) return s;
  replay::RecorderOptions ropts;
  ropts.checkpoint_every = opt_.checkpoint_events;
  ropts.stream_path = journal_path(spec);
  s->recorder_ = std::make_unique<replay::Recorder>(ropts);
  replay::Recorder& rec = *s->recorder_;
  rec.set_meta("bench", experiment_);
  rec.set_meta("case", spec.name);
  for (const auto& [k, v] : spec.point.items()) rec.set_meta("point." + k, v);
  rec.set_meta("replicate", std::to_string(spec.replicate));
  rec.set_meta("seed", std::to_string(spec.seed));
  rec.set_meta("master_seed", std::to_string(opt_.seed));
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", opt_.duration);
  rec.set_meta("duration", buf);
  std::snprintf(buf, sizeof(buf), "%.17g", opt_.warmup);
  rec.set_meta("warmup", buf);
  rec.set_meta("smoke", opt_.smoke ? "1" : "0");
  rec.set_meta("full", opt_.full ? "1" : "0");
  return s;
}

int ReplayCoordinator::run_replay(const exp::RunFn& run) {
  exp::RunSpec spec;
  spec.name = journal_.meta_value("case");
  for (const auto& [k, v] : journal_.meta()) {
    if (k.rfind("point.", 0) == 0) spec.point.set(k.substr(6), v);
  }
  spec.replicate = std::atoi(journal_.meta_value("replicate").c_str());
  spec.seed =
      std::strtoull(journal_.meta_value("seed").c_str(), nullptr, 10);

  std::printf("replay: %s\n", opt_.replay_path.c_str());
  std::printf("replay: run %s, %zu records, %zu checkpoints%s\n",
              spec.id().c_str(), journal_.records().size(),
              journal_.checkpoints().size(),
              journal_.truncated() ? " (truncated: recorder died mid-run)"
                                   : "");
  verifier_ = std::make_unique<replay::Verifier>(journal_);
  bool threw = false;
  std::string what;
  try {
    run(spec);
  } catch (const std::exception& e) {
    threw = true;
    what = e.what();
  } catch (...) {
    threw = true;
    what = "unknown exception";
  }
  const replay::Verifier& v = *verifier_;
  if (v.diverged()) {
    std::printf("replay: DIVERGED\n%s\n", v.divergence().render().c_str());
    return 1;
  }
  if (threw) {
    // No divergence but the run died the way the recorded one may have —
    // for a truncated journal that *is* the reproduction.
    std::printf("replay: run terminated with: %s\n", what.c_str());
    if (v.reproduced_to_crash_point()) {
      std::printf(
          "replay: reproduced the truncated journal to its crash point "
          "(%" PRIu64 " records, %" PRIu64 " checkpoints verified)\n",
          v.records_matched(), v.verified_checkpoints());
      return 0;
    }
    return 1;
  }
  if (v.reproduced_to_crash_point()) {
    std::printf(
        "replay: reproduced the truncated journal past its crash point "
        "(%" PRIu64 " records, %" PRIu64 " checkpoints verified)\n",
        v.records_matched(), v.verified_checkpoints());
    return 0;
  }
  std::printf("replay: VERIFIED bit-identical (%" PRIu64
              " records, %" PRIu64 " checkpoints)\n",
              v.records_matched(), v.verified_checkpoints());
  return 0;
}

void ReplayCoordinator::configure_runner(exp::RunnerOptions& ropts) const {
  if (!record_mode()) return;
  const std::string dir = record_dir_;
  const std::string exp_name = experiment_;
  ropts.crash_context = [dir, exp_name](const exp::RunSpec& spec) {
    const std::string path = journal_path_for(dir, spec);
    std::string out;
    replay::Journal j;
    if (j.load(path)) {
      char buf[256];
      std::snprintf(buf, sizeof(buf), "journal: %s\njournal records: %zu%s\n",
                    path.c_str(), j.records().size(),
                    j.truncated() ? " (truncated at the crash)" : "");
      out += buf;
      if (!j.checkpoints().empty()) {
        const replay::Checkpoint& cp = j.checkpoints().back();
        std::snprintf(buf, sizeof(buf),
                      "last checkpoint: id %" PRIu64 " at dispatch %" PRIu64
                      ", t=%.9g s\n",
                      cp.id, cp.dispatch_seq, cp.sim_time);
        out += buf;
      } else {
        out += "last checkpoint: none reached\n";
      }
      const std::size_t n = j.records().size();
      const std::size_t tail = n < 5 ? n : 5;
      if (tail > 0) {
        out += "journal tail:\n";
        for (std::size_t i = n - tail; i < n; ++i)
          out += "  " + j.records()[i].render() + "\n";
      }
    } else {
      out += "journal: " + path + " (unreadable or never written)\n";
    }
    out += "repro: bench_" + exp_name + " --replay " + path + "\n";
    return out;
  };
}

}  // namespace rlacast::bench
