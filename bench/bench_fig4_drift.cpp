// Reproduces Figure 4: "Average drift diagram of two competing cwnd's".
//
// Analytic drift field of the §4.4 two-session model with n = 3 and
// pipe = 10, rendered as an ASCII vector field (the paper scales the drift
// down by 5 for readability; we print the raw values per cell).  The visual
// claim: below the diagonal w1 + w2 = pipe both windows grow along the 45°
// line; above it the drift points back toward the desired operating point
// (pipe/2, pipe/2).
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "model/drift.hpp"

using namespace rlacast;

namespace {

char arrow(double dx, double dy) {
  // Quantize the drift direction to 8 compass arrows.
  if (std::abs(dx) < 0.05 && std::abs(dy) < 0.05) return 'o';
  const double ang = std::atan2(dy, dx);  // [-pi, pi]
  static const char* dirs = ">/^\\<,v.";   // E NE N NW W SW S SE
  int idx = static_cast<int>(std::round(ang / (M_PI / 4.0)));
  if (idx < 0) idx += 8;
  return dirs[idx % 8];
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Figure 4: drift field of two competing cwnds "
                      "(n=3, pipe=10)",
                      opt);

  model::DriftField field(3, 10.0);

  std::printf("direction field (x: cwnd1 ->, y: cwnd2 ^):\n\n");
  for (int y = 16; y >= 1; --y) {
    std::printf("%3d  ", y);
    for (int x = 1; x <= 16; ++x) {
      const auto d = field.drift(x, y);
      std::printf("%c ", arrow(d.dx, d.dy));
    }
    std::printf("\n");
  }
  std::printf("     ");
  for (int x = 1; x <= 16; ++x) std::printf("%c ", x % 5 ? ' ' : '+');
  std::printf("\n\n");

  std::printf("sampled drift vectors (per 2*RTT):\n");
  const double pts[][2] = {{2, 2},  {4, 4},  {5, 5},  {6, 6},
                           {8, 8},  {12, 12}, {3, 9},  {9, 3},
                           {14, 2}, {2, 14}};
  for (const auto& p : pts) {
    const auto d = field.drift(p[0], p[1]);
    std::printf("  (%4.1f,%4.1f): (%+6.3f, %+6.3f)  signals/event=%d\n", p[0],
                p[1], d.dx, d.dy, field.signals_at(p[0], p[1]));
  }

  // The drift flips sign exactly at the pipe boundary: +2 below it,
  // negative at it — so the chain oscillates around w1 + w2 = pipe,
  // i.e. around the desired operating point (pipe/2, pipe/2).
  std::printf("\ndiagonal drift: at w=%.1f each: %+0.3f;  at w=%.1f each: "
              "%+0.3f\n",
              4.9, field.drift(4.9, 4.9).dx, 5.0, field.drift(5.0, 5.0).dx);
  std::printf("shape check: growth (ne arrows) below w1+w2=10, contraction\n"
              "pointing back toward the diagonal above it.\n");
  return 0;
}
