// §3.1's macro-effect measurements: buffer periods at a drop-tail gateway.
//
// The paper's empirical justification for grouping losses within 2·RTT into
// one congestion signal: "the buffer period normally lasts much longer than
// two round-trip times, and the buffer-full period normally lasts around
// 2·RTT or less".  This bench runs TCP background traffic through a
// drop-tail bottleneck, samples the queue, segments it into buffer periods,
// and prints both durations in units of the propagation RTT.
#include <cstdio>
#include <memory>
#include <vector>

#include "common.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "stats/table.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"
#include "trace/buffer_periods.hpp"
#include "trace/queue_monitor.hpp"

using namespace rlacast;

namespace {

struct Measured {
  trace::BufferPeriodStats stats;
  double rtt;
  double drop_rate;
};

Measured run(int n_flows, double share_pps, const bench::Options& opt) {
  sim::Simulator sim(opt.seed);
  net::Network net(sim);
  const auto s = net.add_node(), g = net.add_node(), r = net.add_node();
  net::LinkConfig bttl;
  bttl.bandwidth_bps = share_pps * (n_flows + 0) * 8000.0;
  bttl.delay = 0.01;
  bttl.buffer_pkts = 20;
  net.connect(s, g, bttl);
  net::LinkConfig fast;
  fast.bandwidth_bps = 1e9;
  fast.delay = 0.1;  // long leg: RTT ~ 0.22 s like the paper's tree
  net.connect(g, r, fast);
  net.build_routes();

  std::vector<std::unique_ptr<tcp::TcpReceiver>> rcvrs;
  std::vector<std::unique_ptr<tcp::TcpSender>> snds;
  auto starts = sim.rng_stream("starts");
  for (int i = 0; i < n_flows; ++i) {
    const net::PortId port = 10 + i;
    rcvrs.push_back(std::make_unique<tcp::TcpReceiver>(net, r, port));
    snds.push_back(std::make_unique<tcp::TcpSender>(net, s, port, r, port,
                                                    i + 1, tcp::TcpParams{}));
    snds.back()->start_at(starts.uniform(0.0, 1.0));
  }

  auto* link = net.link_between(s, g);
  trace::QueueMonitor mon(sim, link->queue(), /*period=*/0.01, opt.warmup,
                          opt.duration);
  sim.run_until(opt.duration);

  Measured out{trace::analyze_buffer_periods(mon.samples(), /*low=*/5,
                                             /*high=*/18),
               2.0 * (0.01 + 0.1), link->queue().stats().drop_rate()};
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Section 3.1: buffer periods at a drop-tail bottleneck", opt);

  stats::Table t({"TCP flows", "buffer periods", "mean period (RTTs)",
                  "mean full spell (RTTs)", "drop rate"});
  for (int n : {4, 8, 16}) {
    const auto m = run(n, 100.0, opt);
    t.add_row({std::to_string(n), std::to_string(m.stats.periods),
               stats::Table::num(m.stats.period_length.mean() / m.rtt, 2),
               m.stats.full_length.count()
                   ? stats::Table::num(m.stats.full_length.mean() / m.rtt, 2)
                   : "-",
               stats::Table::num(m.drop_rate, 4)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "paper's observation: buffer periods >> 2 RTT, full spells <= ~2 RTT\n"
      "— the basis for grouping losses within 2*srtt into one congestion\n"
      "signal (RLA rule 2).\n");
  return 0;
}
