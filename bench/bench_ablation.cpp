// Ablations of the RLA's design choices (DESIGN.md §4):
//  A1: congestion-signal grouping window (0 / 1 / 2 / 4 RTTs; paper: 2)
//  A2: forced-cut guard on/off (paper: on, factor 2)
//  A3: eta sweep for the troubled census (paper: 20)
//  A4: pthresh RTT exponent k in f(x)=x^k under heterogeneous RTTs
//      (paper: 2; 0 = original RLA)
// Each ablation reports RLA throughput / window and the worst TCP on the
// same topology, showing why the paper's choices sit where they do.
#include <algorithm>
#include <cstdio>

#include "common.hpp"
#include "stats/table.hpp"
#include "topo/flat_tree.hpp"
#include "topo/tertiary_tree.hpp"

using namespace rlacast;

namespace {

topo::FlatTreeConfig flat_base(const bench::Options& opt) {
  topo::FlatTreeConfig cfg;
  cfg.branches.assign(6, topo::FlatBranch{200.0, 1});
  cfg.duration = opt.duration;
  cfg.warmup = opt.warmup;
  cfg.seed = opt.seed;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("RLA design-choice ablations", opt);

  // ---- A1: grouping window -----------------------------------------------------
  std::printf("A1: congestion-signal grouping window (paper: 2 RTT)\n");
  stats::Table t1({"grouping (RTTs)", "RLA pkt/s", "RLA cwnd", "signals",
                   "cuts", "WTCP pkt/s"});
  for (double g : {0.0, 1.0, 2.0, 4.0}) {
    auto cfg = flat_base(opt);
    cfg.rla.grouping_rtts = g;
    const auto r = topo::run_flat_tree(cfg);
    t1.add_row({stats::Table::num(g, 0), stats::Table::num(r.rla.throughput_pps),
                stats::Table::num(r.rla.avg_cwnd),
                std::to_string(r.rla.cong_signals),
                std::to_string(r.rla.window_cuts),
                stats::Table::num(r.worst_tcp().throughput_pps)});
  }
  std::printf("%s", t1.render().c_str());
  std::printf("expected: no grouping (0) inflates the signal count and cuts\n"
              "the window too often; very wide grouping under-reacts.\n\n");

  // ---- A2: forced-cut guard ------------------------------------------------------
  std::printf("A2: forced-cut guard (paper: on, factor 2)\n");
  stats::Table t2({"forced-cut", "RLA pkt/s", "RLA cwnd", "forced cuts",
                   "WTCP pkt/s"});
  for (double factor : {2.0, 8.0, 1e9}) {
    auto cfg = flat_base(opt);
    cfg.rla.forced_cut_factor = factor;
    const auto r = topo::run_flat_tree(cfg);
    t2.add_row({factor > 1e6 ? "off" : stats::Table::num(factor, 0),
                stats::Table::num(r.rla.throughput_pps),
                stats::Table::num(r.rla.avg_cwnd),
                std::to_string(r.rla.forced_cuts),
                stats::Table::num(r.worst_tcp().throughput_pps)});
  }
  std::printf("%s", t2.render().c_str());
  std::printf("expected: the guard engages rarely (near-zero forced cuts in\n"
              "steady state) so disabling it changes little on balanced\n"
              "topologies — it is protection against pathological runs.\n\n");

  // ---- A3: eta sweep --------------------------------------------------------------
  std::printf("A3: troubled-receiver eta (paper: 20)\n");
  stats::Table t3({"eta", "RLA pkt/s", "RLA cwnd", "num troubled (final)",
                   "WTCP pkt/s"});
  for (double eta : {2.0, 5.0, 20.0, 100.0}) {
    auto cfg = flat_base(opt);
    // Unbalance the branches so the census has a decision to make.
    cfg.branches[0].mu_pps = 150.0;
    cfg.branches[5].mu_pps = 600.0;
    cfg.rla.eta = eta;
    const auto r = topo::run_flat_tree(cfg);
    t3.add_row({stats::Table::num(eta, 0),
                stats::Table::num(r.rla.throughput_pps),
                stats::Table::num(r.rla.avg_cwnd),
                std::to_string(r.num_troubled_final),
                stats::Table::num(r.worst_tcp().throughput_pps)});
  }
  std::printf("%s", t3.render().c_str());
  std::printf("expected: small eta shrinks the census toward the single\n"
              "worst receiver (more aggressive), huge eta counts mildly\n"
              "congested receivers too (more conservative).\n\n");

  // ---- A4: pthresh RTT exponent -----------------------------------------------------
  std::printf("A4: pthresh RTT exponent under heterogeneous RTTs "
              "(paper: 2)\n");
  stats::Table t4({"k in f(x)=x^k", "RLA pkt/s", "RLA cwnd", "WTCP pkt/s",
                   "BTCP pkt/s"});
  for (double k : {0.0, 1.0, 2.0}) {
    topo::TreeConfig cfg;
    cfg.bottleneck = topo::TreeCase::kL3AllHetero;
    cfg.gateway_receivers = true;
    cfg.rla.rtt_exponent = k;
    if (k == 0.0) cfg.rla.fixed_pthresh = -1.0;  // original RLA
    cfg.duration = opt.duration;
    cfg.warmup = opt.warmup;
    cfg.seed = opt.seed;
    const auto r = topo::run_tertiary_tree(cfg);
    t4.add_row({stats::Table::num(k, 0),
                stats::Table::num(r.rla[0].throughput_pps),
                stats::Table::num(r.rla[0].avg_cwnd),
                stats::Table::num(r.worst_tcp().throughput_pps),
                stats::Table::num(r.best_tcp().throughput_pps)});
  }
  std::printf("%s", t4.render().c_str());
  std::printf("expected: k=2 discounts signals from short-RTT receivers,\n"
              "compensating TCP's own RTT bias; k=0 over-listens to the\n"
              "near receivers and depresses the multicast share.\n\n");

  // ---- A5: arrival burstiness under drop-tail -----------------------------------
  std::printf("A5: send burstiness vs drop-tail loss share (§3.1's phase\n"
              "discussion: smooth arrivals evade burst-tail drops)\n");
  stats::Table t5({"send quantum", "RLA pkt/s", "RLA cwnd",
                   "RLA signals", "WTCP pkt/s"});
  for (int q : {1, 4, 8}) {
    topo::TreeConfig cfg;
    cfg.bottleneck = topo::TreeCase::kL1;  // one shared drop-tail bottleneck
    cfg.rla.send_quantum = q;
    cfg.rla.max_burst = std::max(4, 2 * q);
    cfg.duration = opt.duration;
    cfg.warmup = opt.warmup;
    cfg.seed = opt.seed;
    const auto r = topo::run_tertiary_tree(cfg);
    t5.add_row({std::to_string(q),
                stats::Table::num(r.rla[0].throughput_pps),
                stats::Table::num(r.rla[0].avg_cwnd),
                std::to_string(r.rla[0].cong_signals),
                stats::Table::num(r.worst_tcp().throughput_pps)});
  }
  std::printf("%s", t5.render().c_str());
  std::printf("expected: larger quanta cluster the multicast stream like\n"
              "TCP's packet trains, raising its drop share at the shared\n"
              "drop-tail gateway and shrinking its window/throughput.\n\n");

  // ---- A6: §2's controllable fairness constant c ---------------------------------
  std::printf("A6: fairness weight w (§2's 'ideal situation': share = c x "
              "TCP's,\nc controllable by a parameter), RED gateways\n");
  stats::Table t6({"weight w", "RLA pkt/s", "mean TCP pkt/s", "ratio"});
  for (double w : {0.5, 1.0, 2.0, 4.0}) {
    auto cfg = flat_base(opt);
    cfg.gateway = topo::GatewayType::kRed;
    cfg.rla.fairness_weight = w;
    const auto r = topo::run_flat_tree(cfg);
    double tcp_mean = 0.0;
    for (const auto& tr : r.tcps) tcp_mean += tr.throughput_pps;
    tcp_mean /= static_cast<double>(r.tcps.size());
    t6.add_row({stats::Table::num(w, 1),
                stats::Table::num(r.rla.throughput_pps),
                stats::Table::num(tcp_mean),
                stats::Table::num(tcp_mean > 0 ? r.rla.throughput_pps / tcp_mean
                                               : 0.0,
                                  2)});
  }
  std::printf("%s", t6.render().c_str());
  std::printf("expected: the share ratio rises monotonically with w while\n"
              "TCP keeps a material share at every setting.\n");
  return 0;
}
