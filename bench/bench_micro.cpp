// Engine microbenchmarks (google-benchmark): scheduler throughput, queue
// operations, RED estimator cost, scoreboard operations, and end-to-end
// simulated-seconds-per-wallclock-second for a reference scenario.
#include <benchmark/benchmark.h>

#include "net/drop_tail.hpp"
#include "net/red.hpp"
#include "sim/scheduler.hpp"
#include "sim/simulator.hpp"
#include "cc/scoreboard.hpp"
#include "topo/flat_tree.hpp"

namespace {

using namespace rlacast;

void BM_SchedulerScheduleDispatch(benchmark::State& state) {
  sim::Scheduler s;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    s.schedule_at(s.now() + 1.0, [&] { ++sink; });
    s.run_one();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_SchedulerScheduleDispatch);

void BM_SchedulerDeepHeap(benchmark::State& state) {
  // Dispatch cost with a heap of `range` pending events.
  const auto depth = static_cast<std::size_t>(state.range(0));
  sim::Scheduler s;
  std::uint64_t sink = 0;
  for (std::size_t i = 0; i < depth; ++i)
    s.schedule_at(1e9 + static_cast<double>(i), [] {});
  for (auto _ : state) {
    s.schedule_at(s.now() + 1.0, [&] { ++sink; });
    s.run_one();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_SchedulerDeepHeap)->Arg(1000)->Arg(100000);

void BM_TimerRescheduleCancel(benchmark::State& state) {
  sim::Simulator sim;
  sim::Timer t(sim, [] {});
  for (auto _ : state) {
    t.schedule(10.0);
    t.cancel();
  }
}
BENCHMARK(BM_TimerRescheduleCancel);

void BM_DropTailEnqueueDequeue(benchmark::State& state) {
  net::DropTailQueue q(64);
  net::Packet p;
  for (auto _ : state) {
    q.enqueue(p, 0.0);
    benchmark::DoNotOptimize(q.dequeue(0.0));
  }
}
BENCHMARK(BM_DropTailEnqueueDequeue);

void BM_RedEnqueueDequeue(benchmark::State& state) {
  net::RedParams params;
  params.capacity = 64;
  net::RedQueue q(params, sim::Rng(1));
  net::Packet p;
  for (auto _ : state) {
    q.enqueue(p, 0.0);
    benchmark::DoNotOptimize(q.dequeue(0.0));
  }
}
BENCHMARK(BM_RedEnqueueDequeue);

void BM_ScoreboardAckCycle(benchmark::State& state) {
  // Window of `range` packets: send, SACK the top, advance.
  const auto w = static_cast<net::SeqNum>(state.range(0));
  cc::Scoreboard sb;
  net::SeqNum next = 0;
  for (net::SeqNum i = 0; i < w; ++i) sb.on_send(next++);
  for (auto _ : state) {
    sb.on_send(next++);
    net::SackBlock b{next - 1, next};
    sb.apply_sack(&b, 1);
    sb.detect_losses(3);
    sb.advance(next - w);
  }
}
BENCHMARK(BM_ScoreboardAckCycle)->Arg(32)->Arg(256);

void BM_FlatTreeSimulatedSecond(benchmark::State& state) {
  // Wallclock cost of one simulated second of the reference scenario:
  // 4 branches at 200 pkt/s, 1 TCP each, plus the RLA session.
  for (auto _ : state) {
    topo::FlatTreeConfig cfg;
    cfg.branches.assign(4, topo::FlatBranch{200.0, 1});
    cfg.duration = 10.0;
    cfg.warmup = 1.0;
    benchmark::DoNotOptimize(topo::run_flat_tree(cfg));
  }
  state.SetItemsProcessed(state.iterations() * 10);  // simulated seconds
}
BENCHMARK(BM_FlatTreeSimulatedSecond)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
