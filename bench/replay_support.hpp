// Bench-side glue for the replay subsystem (src/replay/): one coordinator
// per bench process dispatches between three modes driven by the shared
// flags in bench::Options —
//
//   record  (--record-journal DIR, or implied by --isolate): every run gets
//           a streaming replay::Recorder whose journal file survives the
//           run — or the run's crash — and whose name encodes the RunSpec.
//   replay  (--replay PATH): the bench loads the journal, reconstructs the
//           original RunSpec and effective durations from journal metadata,
//           re-executes that single run under a replay::Verifier, and exits
//           0 (bit-identical, or reproduced a truncated journal up to its
//           crash point) or 1 (divergence; the report names the first
//           divergent event and the bracketing checkpoints).
//   off     (neither flag): sessions are inert and the run is untouched.
//
// Wiring pattern for an exp-migrated bench:
//
//   bench::ReplayCoordinator replay("fig7_droptail", opt);
//   const exp::RunFn run = [&](const exp::RunSpec& spec) {
//     topo::TreeConfig cfg = ...;
//     auto session = replay.session(spec);
//     cfg.instrument = session->instrument();
//     const auto res = topo::run_tertiary_tree(cfg);
//     session->finish();
//     return ...;
//   };
//   if (replay.replay_mode()) return replay.run_replay(run);
//   exp::RunnerOptions ropts = opt.runner_options();
//   replay.configure_runner(ropts);   // crash reports gain a repro command
#pragma once

#include <memory>
#include <string>

#include "common.hpp"
#include "exp/runner.hpp"
#include "exp/spec.hpp"
#include "replay/recorder.hpp"
#include "replay/verifier.hpp"
#include "sim/simulator.hpp"

namespace rlacast::bench {

/// The per-run half of the glue: holds the run's Recorder (record mode) or
/// borrows the coordinator's Verifier (replay mode), hands out the
/// Simulator hook, and finalizes on finish(). Inert when both are absent.
class ReplaySession {
 public:
  /// The topo instrument hook installing this session's observer; empty
  /// std::function when the session is inert.
  std::function<void(sim::Simulator&)> instrument();

  /// Ends the session: takes the recorder's final checkpoint and closes the
  /// journal file, or finalizes the verifier (divergence is inspected by
  /// ReplayCoordinator::run_replay, not thrown here).
  void finish();

  ~ReplaySession() { finish(); }

 private:
  friend class ReplayCoordinator;
  std::unique_ptr<replay::Recorder> recorder_;
  replay::Verifier* verifier_ = nullptr;  // owned by the coordinator
  bool finished_ = false;
};

class ReplayCoordinator {
 public:
  /// `experiment` is the bench's results.json experiment name (e.g.
  /// "fig7_droptail"); the crash-report repro command is derived from it.
  /// In replay mode the constructor loads the journal and overwrites
  /// opt.duration / opt.warmup / opt.seed with the recorded effective
  /// values, so the re-execution matches even across --smoke / --full.
  /// Exits with status 2 when --replay names an unreadable journal.
  ReplayCoordinator(std::string experiment, Options& opt);

  bool replay_mode() const { return !opt_.replay_path.empty(); }
  bool record_mode() const { return !record_dir_.empty(); }

  /// Effective journal directory: --record-journal, or
  /// <crash-dir>/journals when --isolate is on without an explicit one.
  const std::string& record_dir() const { return record_dir_; }

  /// Journal file path for one run (record mode).
  std::string journal_path(const exp::RunSpec& spec) const;

  /// Creates the per-run session for `spec`. Never returns null; the
  /// session is inert when neither recording nor replaying.
  std::unique_ptr<ReplaySession> session(const exp::RunSpec& spec);

  /// Replay driver: rebuilds the RunSpec from journal metadata, re-executes
  /// it through `run`, and reports the verdict. Returns the bench's exit
  /// code (0 verified / reproduced-to-crash-point, 1 diverged or errored).
  int run_replay(const exp::RunFn& run);

  /// Record-mode runner integration: attaches a crash_context that adds the
  /// run's journal path, checkpoint coverage, journal tail, and the exact
  /// `bench_<experiment> --replay <journal>` repro command to crash reports.
  void configure_runner(exp::RunnerOptions& ropts) const;

 private:
  std::string experiment_;
  Options& opt_;
  std::string record_dir_;
  replay::Journal journal_;            // replay mode: the loaded journal
  std::unique_ptr<replay::Verifier> verifier_;  // replay mode, during the run
};

}  // namespace rlacast::bench
