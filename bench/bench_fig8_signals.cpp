// Reproduces Figure 8: "Statistics of the number of congestion signals".
//
// For each drop-tail case, the worst / best / average per-branch congestion
// signal counts seen by the RLA sender, against the same statistics for the
// competing TCP connections — the evidence for §3.1's claim that multicast
// and TCP senders see the same congestion *frequency* on each branch.
// Cases 4 and 5 split branches into "more congested" / "less congested"
// rows as the paper does.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "topo/tertiary_tree.hpp"

using namespace rlacast;

namespace {

void add_rows(stats::Table& t, const std::string& case_name,
              const std::string& group_name, const topo::TreeResult& res,
              bool congested_group) {
  stats::Summary rla, tcp;
  for (std::size_t i = 0; i < res.rla_signals_per_receiver.size(); ++i) {
    if (res.receiver_congested[i] != congested_group) continue;
    rla.add(static_cast<double>(res.rla_signals_per_receiver[i]));
    if (i < res.tcp_signals.size())  // gateway receivers have no TCP twin
      tcp.add(static_cast<double>(res.tcp_signals[i]));
  }
  if (rla.count() == 0) return;
  t.add_row({case_name, group_name, stats::Table::num(rla.max(), 0),
             stats::Table::num(rla.min(), 0), stats::Table::num(rla.mean(), 0),
             stats::Table::num(tcp.max(), 0), stats::Table::num(tcp.min(), 0),
             stats::Table::num(tcp.mean(), 0)});
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  if (opt.smoke) {
    // CI-sized pass for the golden-output regression guard
    // (tests/golden_bench_test.cmake): short run, full case list.
    opt.duration = 40.0;
    opt.warmup = 10.0;
  }
  bench::print_header(
      "Figure 8: per-branch congestion-signal statistics (drop-tail)", opt);

  stats::Table t({"case", "links", "RLA worst", "RLA best", "RLA avg",
                  "TCP worst", "TCP best", "TCP avg"});

  const struct {
    topo::TreeCase c;
    bool split;  // cases 4 & 5 report congested and clean branches apart
  } cases[] = {{topo::TreeCase::kL1, false},
               {topo::TreeCase::kL3All, false},
               {topo::TreeCase::kL4All, false},
               {topo::TreeCase::kL4Some, true},
               {topo::TreeCase::kL21, true}};

  int case_no = 1;
  for (const auto& [c, split] : cases) {
    topo::TreeConfig cfg;
    cfg.bottleneck = c;
    cfg.gateway = topo::GatewayType::kDropTail;
    cfg.duration = opt.duration;
    cfg.warmup = opt.warmup;
    cfg.seed = opt.seed;
    const auto res = topo::run_tertiary_tree(cfg);
    const std::string name = std::to_string(case_no++);
    if (split) {
      add_rows(t, name, "more congested", res, true);
      add_rows(t, name, "less congested", res, false);
    } else {
      add_rows(t, name, "all links", res, true);
    }
  }

  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Shape check: on equally-congested branches, RLA and TCP columns\n"
      "should be close (same congestion frequency, §3.1); in cases 4-5 the\n"
      "clean branches see far fewer signals than the congested ones.\n");
  return 0;
}
