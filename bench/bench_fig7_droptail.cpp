// Reproduces Figure 7: "Simulation results with drop-tail gateways".
//
// Five bottleneck placements on the four-level tertiary tree (27 receivers,
// one background TCP per receiver, buffer 20 packets, soft-bottleneck share
// 100 pkt/s). Rows: RLA throughput / cwnd / RTT / #signals / #cuts /
// #forced, and the worst (WTCP) and best (BTCP) competing TCP.
//
// The five cases run as an exp:: grid — `--jobs N` fans them out across
// threads, `--replicates R` repeats each case with derived seeds and prints
// mean ±95% CI, `--json PATH` emits the machine-readable batch.
//
// Expected shape (paper values for reference, 2900 s measurement):
//   case:         1(L1)  2(L3*)  3(L4*)  4(L4,1-5)  5(L21)
//   RLA thrput    144.1  105.1    94.6     153.0    224.6
//   WTCP thrput    81.8   83.0    79.2      68.2     74.5
//   BTCP thrput    89.6   87.8    80.3     170.7    570.7
// plus: #forced cuts = 0 everywhere, RLA cuts ~ signals/27, and the
// essential-fairness check of Theorem II (a=1/4, b=2n).
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "exp/runner.hpp"
#include "model/formulas.hpp"
#include "replay_support.hpp"
#include "topo/tertiary_tree.hpp"

using namespace rlacast;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  if (opt.smoke) {
    // CI-sized pass for the golden-output regression guard
    // (tests/golden_bench_test.cmake): short run, full case list.
    opt.duration = 40.0;
    opt.warmup = 10.0;
  }
  bench::ReplayCoordinator replay("fig7_droptail", opt);
  bench::print_header(
      "Figure 7: multicast sharing with TCP, drop-tail gateways", opt);

  const topo::TreeCase cases[] = {
      topo::TreeCase::kL1, topo::TreeCase::kL3All, topo::TreeCase::kL4All,
      topo::TreeCase::kL4Some, topo::TreeCase::kL21};

  exp::Grid grid;
  grid.master_seed(opt.seed).replicates(opt.replicates);
  for (const auto c : cases)
    grid.add_case(topo::tree_case_name(c),
                  exp::Point{}.set("case", static_cast<std::int64_t>(c)));

  const exp::RunFn run = [&](const exp::RunSpec& spec) {
    topo::TreeConfig cfg;
    cfg.bottleneck = static_cast<topo::TreeCase>(spec.point.get_int("case", 0));
    cfg.gateway = topo::GatewayType::kDropTail;
    cfg.duration = opt.duration;
    cfg.warmup = opt.warmup;
    cfg.seed = spec.seed;
    auto session = replay.session(spec);
    cfg.instrument = session->instrument();
    const auto res = topo::run_tertiary_tree(cfg);
    session->finish();
    return bench::metrics_from_column(
        {spec.name, res.rla[0], res.worst_tcp(), res.best_tcp()});
  };
  if (replay.replay_mode()) return replay.run_replay(run);

  exp::RunnerOptions ropts = opt.runner_options();
  replay.configure_runner(ropts);
  exp::Runner runner(ropts);
  const exp::Results results = runner.run(grid, run);
  const auto cols = bench::replicate0_columns(results);

  std::printf("%s\n", bench::render_fig7_style_table(cols).c_str());

  // Essential-fairness audit (Theorem II: 1/4 < RLA/WTCP < 2n = 54).
  const auto bounds = model::theorem2_droptail_bounds(27);
  std::printf("Theorem II audit (drop-tail, n=27): a=%.2f b=%.0f\n",
              bounds.lo, bounds.hi);
  for (std::size_t i = 0; i < cols.size(); ++i) {
    const double ratio =
        cols[i].rla.throughput_pps / cols[i].wtcp.throughput_pps;
    std::printf("  case %zu (%s): RLA/WTCP = %.2f  -> %s\n", i + 1,
                cols[i].name.c_str(), ratio,
                bounds.contains(ratio) ? "within bounds" : "OUT OF BOUNDS");
  }
  std::printf("\nlisten ratio audit (cuts/signals; expect ~1/27 = %.3f):\n",
              1.0 / 27.0);
  for (std::size_t i = 0; i < cols.size(); ++i) {
    const auto& r = cols[i].rla;
    std::printf("  case %zu: %.4f (forced cuts: %llu)\n", i + 1,
                r.cong_signals
                    ? static_cast<double>(r.window_cuts) / r.cong_signals
                    : 0.0,
                static_cast<unsigned long long>(r.forced_cuts));
  }
  const bool io_ok = bench::finish_grid_output("fig7_droptail", opt, results,
                            runner.last_wall_seconds(),
                            {{"gateway", "droptail"}});
  return (results.num_errors() || !io_ok) ? 1 : 0;
}
