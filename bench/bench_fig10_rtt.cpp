// Reproduces Figure 10: "Results with different round-trip times".
//
// The generalized RLA (pthresh = (srtt_i/srtt_max)^2 / num_trouble_rcvr) on
// the tertiary tree with gateways G31..G39 added as receivers: 36 receivers
// total, two RTT classes (gateway receivers ~30 ms, leaves ~230 ms).
// Two cases: bottlenecks at the level-2 links or at the level-3 links —
// run as an exp:: grid (`--jobs`, `--replicates`, `--json`).
//
// Expected shape (paper values, 2900 s):
//   case 1 (L2i): RLA 167.6 pkt/s, WTCP 78.0, BTCP 83.2
//   case 2 (L3i): RLA 161.6 pkt/s, WTCP 64.2, BTCP 67.7
// i.e. a reasonable (bounded, not runaway) multicast share.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "exp/runner.hpp"
#include "replay_support.hpp"
#include "topo/tertiary_tree.hpp"

using namespace rlacast;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  if (opt.smoke) {
    // CI-sized pass for the golden-output regression guard
    // (tests/golden_bench_test.cmake): short run, full case list.
    opt.duration = 40.0;
    opt.warmup = 10.0;
  }
  bench::ReplayCoordinator replay("fig10_rtt", opt);
  bench::print_header(
      "Figure 10: generalized RLA with different round-trip times", opt);

  const topo::TreeCase cases[] = {topo::TreeCase::kL2AllHetero,
                                  topo::TreeCase::kL3AllHetero};

  exp::Grid grid;
  grid.master_seed(opt.seed).replicates(opt.replicates);
  for (const auto c : cases)
    grid.add_case(topo::tree_case_name(c),
                  exp::Point{}.set("case", static_cast<std::int64_t>(c)));

  const exp::RunFn run = [&](const exp::RunSpec& spec) {
    topo::TreeConfig cfg;
    cfg.bottleneck = static_cast<topo::TreeCase>(spec.point.get_int("case", 0));
    cfg.gateway = topo::GatewayType::kDropTail;
    cfg.gateway_receivers = true;  // 36 receivers, mixed RTTs
    cfg.rla.rtt_exponent = 2.0;    // f(x) = x^2 (§5.3)
    cfg.duration = opt.duration;
    cfg.warmup = opt.warmup;
    cfg.seed = spec.seed;
    auto session = replay.session(spec);
    cfg.instrument = session->instrument();
    const auto res = topo::run_tertiary_tree(cfg);
    session->finish();
    return bench::metrics_from_column(
        {spec.name, res.rla[0], res.worst_tcp(), res.best_tcp()});
  };
  if (replay.replay_mode()) return replay.run_replay(run);

  exp::RunnerOptions ropts = opt.runner_options();
  replay.configure_runner(ropts);
  exp::Runner runner(ropts);
  const exp::Results results = runner.run(grid, run);
  const auto cols = bench::replicate0_columns(results);

  std::printf("%s\n", bench::render_fig7_style_table(cols).c_str());
  std::printf(
      "Shape check: the multicast session keeps a reasonable share (above\n"
      "the worst TCP, below a small multiple), despite receivers with\n"
      "~8x different round-trip times.\n");
  const bool io_ok = bench::finish_grid_output("fig10_rtt", opt, results,
                            runner.last_wall_seconds(),
                            {{"gateway", "droptail"},
                             {"topology", "gateway_receivers"}});
  return (results.num_errors() || !io_ok) ? 1 : 0;
}
