// Extension bench: ECN-enabled RED gateways (the §3.3 remark that network
// improvements "can be easily incorporated" made measurable).
//
// The case-3 tertiary tree with RED, run three ways:
//   1. plain RED (the paper's Figure 9 setup),
//   2. ECN RED + ECN TCP + ECN RLA,
//   3. ECN RED with only the RLA upgraded (deployment asymmetry).
// Reported: throughputs, fairness ratio, retransmissions, and timeouts —
// ECN should preserve the fairness shape while nearly eliminating loss
// recovery on the data path.
#include <cstdio>

#include "common.hpp"
#include "stats/table.hpp"
#include "topo/tertiary_tree.hpp"

using namespace rlacast;

namespace {

topo::TreeResult run_variant(bool rla_ecn, bool tcp_ecn, bool red_ecn,
                             const bench::Options& opt) {
  topo::TreeConfig cfg;
  cfg.bottleneck = topo::TreeCase::kL4All;
  cfg.gateway = topo::GatewayType::kRed;
  cfg.phase_randomization = false;
  cfg.red.ecn = red_ecn;
  cfg.rla.ecn = rla_ecn;
  cfg.tcp.ecn = tcp_ecn;
  cfg.duration = opt.duration;
  cfg.warmup = opt.warmup;
  cfg.seed = opt.seed;
  return topo::run_tertiary_tree(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Extension: ECN on the Figure 9 case-3 topology", opt);

  stats::Table t({"configuration", "RLA pkt/s", "RLA cwnd", "RLA rexmits",
                  "RLA timeouts", "WTCP pkt/s", "RLA/WTCP"});
  struct Row {
    const char* name;
    bool rla_ecn, tcp_ecn, red_ecn;
  };
  for (const Row row : {Row{"plain RED (paper)", false, false, false},
                        Row{"ECN everywhere", true, true, true},
                        Row{"ECN RED, RLA only", true, false, true}}) {
    const auto r = run_variant(row.rla_ecn, row.tcp_ecn, row.red_ecn, opt);
    const double wtcp = r.worst_tcp().throughput_pps;
    t.add_row({row.name, stats::Table::num(r.rla[0].throughput_pps),
               stats::Table::num(r.rla[0].avg_cwnd),
               std::to_string(r.rla_mcast_rexmits + r.rla_ucast_rexmits),
               std::to_string(r.rla[0].timeouts),
               stats::Table::num(wtcp),
               stats::Table::num(wtcp > 0 ? r.rla[0].throughput_pps / wtcp
                                          : 0.0,
                                 2)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "shape check: ECN keeps the essential-fairness ratio in the same\n"
      "band as plain RED while cutting multicast retransmissions and\n"
      "timeouts sharply (congestion signalled by marks, not losses);\n"
      "upgrading only the multicast sender must not let it trample TCP.\n");
  return 0;
}
