// Validates the analytic models of §4 against packet-level simulation:
//
//  E1: eq. (1) — the TCP PA window vs the measured average window of a TCP
//      connection through a RED bottleneck, across a loss-rate sweep.
//  E2: eq. (3) / the Proposition — the RLA window with 2..n receivers under
//      independent (fig. 2(a)) and common (fig. 2(b)) losses, vs the
//      Proposition bounds sqrt(2(1-p)/p) .. sqrt(n) * sqrt(2(1-p)/p).
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "model/formulas.hpp"
#include "model/window_walk.hpp"
#include "stats/table.hpp"
#include "topo/flat_tree.hpp"

using namespace rlacast;

namespace {

/// Runs a flat tree and returns (avg window, congestion probability) of the
/// RLA session: p = window-cut-relevant signals / packets acked.
struct Measured {
  double window;
  double p_max;
  std::uint64_t signals;
};

Measured run_rla(int n_branches, double mu_pps, bool shared,
                 const bench::Options& opt) {
  topo::FlatTreeConfig cfg;
  cfg.branches.assign(static_cast<std::size_t>(n_branches),
                      topo::FlatBranch{mu_pps, 1});
  if (shared) cfg.shared_bottleneck_pps = mu_pps * n_branches;
  cfg.gateway = topo::GatewayType::kRed;
  cfg.duration = opt.duration;
  cfg.warmup = opt.warmup;
  cfg.seed = opt.seed;
  const auto res = topo::run_flat_tree(cfg);
  // Largest per-receiver congestion probability: signals from the busiest
  // receiver over packets delivered.
  std::uint64_t max_signals = 0, total_signals = 0;
  for (auto s : res.rla_signals_per_receiver) {
    max_signals = std::max(max_signals, s);
    total_signals += s;
  }
  const double pkts = res.rla.throughput_pps * opt.measured_seconds();
  return {res.rla.avg_cwnd,
          pkts > 0 ? static_cast<double>(max_signals) / pkts : 0.0,
          total_signals};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header(
      "Model validation: eq. (1), eq. (3), Proposition bounds", opt);

  // ---- E1: TCP PA window across loss sweeps ---------------------------------
  std::printf("E1: TCP average window vs eq. (1) (single TCP, RED "
              "bottleneck)\n");
  stats::Table t1({"bottleneck pkt/s", "measured p", "measured W",
                   "PA window sqrt(2(1-p)/p)", "ratio"});
  for (double mu : {60.0, 120.0, 240.0, 480.0}) {
    topo::FlatTreeConfig cfg;
    cfg.branches = {topo::FlatBranch{mu, 1}};
    cfg.with_multicast = false;
    cfg.gateway = topo::GatewayType::kRed;
    cfg.duration = opt.duration;
    cfg.warmup = opt.warmup;
    cfg.seed = opt.seed;
    const auto res = topo::run_flat_tree(cfg);
    const auto& tcp = res.tcps[0];
    const double pkts = tcp.throughput_pps * opt.measured_seconds();
    if (pkts <= 0 || tcp.cong_signals == 0) continue;
    const double p = static_cast<double>(tcp.cong_signals) / pkts;
    const double predicted = model::tcp_pa_window(p);
    t1.add_row({stats::Table::num(mu, 0), stats::Table::num(p, 4),
                stats::Table::num(tcp.avg_cwnd, 2),
                stats::Table::num(predicted, 2),
                stats::Table::num(tcp.avg_cwnd / predicted, 2)});
  }
  std::printf("%s\n", t1.render().c_str());

  // ---- E2: RLA window vs eq. (3) / Proposition --------------------------------
  std::printf("E2: RLA window vs the Proposition (eq. 2) bounds\n");
  stats::Table t2({"receivers", "loss structure", "measured p_max",
                   "measured W", "lower bound", "upper bound", "within"});
  for (int n : {2, 4, 8}) {
    for (bool shared : {false, true}) {
      const auto m = run_rla(n, 200.0, shared, opt);
      if (m.p_max <= 0.0) continue;
      const auto b = model::proposition_window_bounds(m.p_max, n);
      t2.add_row({std::to_string(n), shared ? "common" : "independent",
                  stats::Table::num(m.p_max, 4),
                  stats::Table::num(m.window, 2), stats::Table::num(b.lo, 2),
                  stats::Table::num(b.hi, 2),
                  b.contains(m.window) ? "yes" : "NO"});
    }
  }
  std::printf("%s\n", t2.render().c_str());

  // ---- E2b: pure window-walk Monte Carlo vs the PA prediction -----------------
  std::printf("E2b: window-walk Monte Carlo (the §4 random processes "
              "directly)\n");
  stats::Table tw({"process", "p", "n", "mean W (MC)", "PA W", "ratio"});
  const std::int64_t steps = opt.full ? 5'000'000 : 1'000'000;
  for (double p : {0.01, 0.03}) {
    const auto t = model::walk_tcp(p, steps, sim::Rng(opt.seed));
    tw.add_row({"TCP", stats::Table::num(p, 3), "-",
                stats::Table::num(t.mean_window, 2),
                stats::Table::num(t.pa_window, 2),
                stats::Table::num(t.ratio, 3)});
    for (int n : {2, 27}) {
      const auto ri = model::walk_rla_independent(p, n, steps,
                                                  sim::Rng(opt.seed + 1));
      tw.add_row({"RLA indep", stats::Table::num(p, 3), std::to_string(n),
                  stats::Table::num(ri.mean_window, 2),
                  stats::Table::num(ri.pa_window, 2),
                  stats::Table::num(ri.ratio, 3)});
      const auto rc =
          model::walk_rla_common(p, n, steps, sim::Rng(opt.seed + 2));
      tw.add_row({"RLA common", stats::Table::num(p, 3), std::to_string(n),
                  stats::Table::num(rc.mean_window, 2),
                  stats::Table::num(rc.pa_window, 2),
                  stats::Table::num(rc.ratio, 3)});
    }
  }
  std::printf("%s", tw.render().c_str());
  std::printf("the mean/PA ratio is a stable constant (~0.8-0.9) across\n"
              "processes — the proportionality the paper's PA method needs.\n\n");

  // ---- closed-form reference table -------------------------------------------
  std::printf("closed-form eq. (3) reference (p1 = p2 = p):\n");
  stats::Table t3({"p", "TCP eq.(1)", "RLA n=2 eq.(3)", "RLA n=27 indep",
                   "RLA n=27 common"});
  for (double p : {0.005, 0.01, 0.02, 0.05}) {
    t3.add_row({stats::Table::num(p, 3),
                stats::Table::num(model::tcp_pa_window(p), 2),
                stats::Table::num(model::rla_two_receiver_window(p, p), 2),
                stats::Table::num(model::rla_independent_loss_window(p, 27), 2),
                stats::Table::num(model::rla_common_loss_window(p, 27), 2)});
  }
  std::printf("%s\n", t3.render().c_str());
  return 0;
}
