// Workload benchmark: bounded fairness under realistic traffic mixes and
// against modern competitor senders (ISSUE 6 tentpole).
//
// On the Figure-6 tertiary tree (L1 bottleneck, drop-tail AND RED), the RLA
// multicast session runs against background traffic in a 3x3 sweep:
//
//   competitor — the background TCP flavour: SACK (the paper's), a
//                delay-based Vegas-style sender (cc::DelayGradient), and a
//                BBR-style model-based sender (cc::BbrModel);
//   traffic    — the workload shape (src/workload/): infinite FTP (the
//                paper's), a heavy-tailed web mix (Pareto flow sizes,
//                exponential think times), and FTP + on/off CBR datagram
//                cross-traffic.
//
// Every run carries a stats::FairnessMonitor emitting a sliding-window Jain
// index over {RLA, background flows}; application-limited windows (web
// think times, finite-flow tails) are excluded from the per-window
// Theorem I/II band checks — a flow that WON'T use its share is not
// evidence about one that CAN'T get it. The per-window Jain series lands in
// results.json ("jain.w00", "jain.w01", ...) for plotting.
//
// Exp-runner based: `--jobs N`, `--replicates R`, `--json PATH`,
// `--timeout S`, `--smoke` (CI-sized pass), plus the replay flags
// (--record-journal / --replay) via bench/replay_support.hpp.
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "exp/runner.hpp"
#include "model/formulas.hpp"
#include "replay_support.hpp"
#include "topo/tertiary_tree.hpp"

using namespace rlacast;

namespace {

constexpr double kFairnessWindow = 10.0;  // seconds per Jain sample

tcp::TcpVariant variant_from(const std::string& v) {
  if (v == "vegas") return tcp::TcpVariant::kVegas;
  if (v == "bbr") return tcp::TcpVariant::kBbr;
  return tcp::TcpVariant::kSack;
}

workload::TrafficKind traffic_from(const std::string& t) {
  if (t == "web") return workload::TrafficKind::kWeb;
  if (t == "onoff") return workload::TrafficKind::kOnOff;
  return workload::TrafficKind::kFtp;
}

exp::Metrics workload_metrics(const topo::TreeResult& res, bool red) {
  exp::Metrics m;
  m.set("rla.thrput_pps", res.rla[0].throughput_pps);
  m.set("wtcp.thrput_pps", res.worst_tcp().throughput_pps);
  m.set("btcp.thrput_pps", res.best_tcp().throughput_pps);
  const double ratio = res.worst_tcp().throughput_pps > 0.0
                           ? res.rla[0].throughput_pps /
                                 res.worst_tcp().throughput_pps
                           : 0.0;
  m.set("fairness_ratio", ratio);
  m.set("rla.cwnd", res.rla[0].avg_cwnd);
  m.set("rla.signals", static_cast<double>(res.rla[0].cong_signals));

  // Jain telemetry: run minima/means plus the full window series.
  m.set("jain.min", res.min_jain);
  m.set("jain.mean", res.mean_jain);
  int windows_with_evidence = 0;
  for (std::size_t k = 0; k < res.fairness_samples.size(); ++k) {
    const auto& s = res.fairness_samples[k];
    if (s.jain >= 0.0) ++windows_with_evidence;
    char key[24];
    std::snprintf(key, sizeof key, "jain.w%02u",
                  static_cast<unsigned>(k % 100));
    m.set(key, s.jain);
  }
  m.set("jain.windows", static_cast<double>(windows_with_evidence));

  // Per-window Theorem band check over network-limited flows only. Probe 0
  // is the RLA session; the rest are the background flows (-1 = excluded
  // as application-limited that window).
  const auto band = red ? model::theorem1_red_bounds(27)
                        : model::theorem2_droptail_bounds(27);
  int checked = 0;
  int in_band = 0;
  for (const auto& s : res.fairness_samples) {
    if (s.throughput_pps.empty() || s.throughput_pps[0] < 0.0) continue;
    double wtcp = -1.0;
    for (std::size_t i = 1; i < s.throughput_pps.size(); ++i) {
      const double x = s.throughput_pps[i];
      if (x < 0.0) continue;  // app-limited: not fairness evidence
      if (wtcp < 0.0 || x < wtcp) wtcp = x;
    }
    if (wtcp < 0.0) continue;  // no network-limited competitor this window
    ++checked;
    const double r =
        wtcp > 0.0 ? s.throughput_pps[0] / wtcp : band.hi + 1.0;
    if (band.contains(r)) ++in_band;
  }
  m.set("band.checked", static_cast<double>(checked));
  m.set("band.inband", static_cast<double>(in_band));

  // Workload bookkeeping.
  m.set("web.flows_started", static_cast<double>(res.web_flows_started));
  m.set("web.flows_completed", static_cast<double>(res.web_flows_completed));
  m.set("onoff.sent", static_cast<double>(res.onoff_packets_sent));
  m.set("onoff.rcvd", static_cast<double>(res.onoff_packets_received));
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  if (opt.smoke) {
    opt.duration = 80.0;
    opt.warmup = 20.0;
  }
  bench::ReplayCoordinator replay("workload", opt);
  bench::print_header(
      "Workload mixes: RLA vs SACK/Vegas/BBR under FTP, web, and on/off "
      "traffic",
      opt);

  const char* gateways[] = {"droptail", "red"};
  const char* variants[] = {"sack", "vegas", "bbr"};
  const char* traffics[] = {"ftp", "web", "onoff"};

  exp::Grid grid;
  grid.master_seed(opt.seed).replicates(opt.replicates);
  for (const char* gw : gateways)
    for (const char* v : variants)
      for (const char* t : traffics)
        grid.add_case(std::string(v) + "-" + t,
                      exp::Point{}.set("gw", gw).set("tcp", v).set("mix", t));

  const exp::RunFn run = [&](const exp::RunSpec& spec) {
    topo::TreeConfig cfg;
    cfg.bottleneck = topo::TreeCase::kL1;
    cfg.gateway = spec.point.get("gw", "droptail") == "red"
                      ? topo::GatewayType::kRed
                      : topo::GatewayType::kDropTail;
    cfg.duration = opt.duration;
    cfg.warmup = opt.warmup;
    cfg.seed = spec.seed;
    cfg.tcp.variant = variant_from(spec.point.get("tcp", "sack"));
    cfg.traffic.kind = traffic_from(spec.point.get("mix", "ftp"));
    // On/off cross-traffic: ~20% of the L1 bottleneck on average (27
    // sources x 20 pps x 50% duty over 2800 pps capacity).
    cfg.traffic.onoff.rate_pps = 20.0;
    cfg.fairness.window = kFairnessWindow;
    cfg.fairness.start = cfg.warmup;
    cfg.fairness.stop = cfg.duration;

    auto session = replay.session(spec);
    cfg.instrument = session->instrument();
    const auto res = topo::run_tertiary_tree(cfg);
    session->finish();
    return workload_metrics(res, cfg.gateway == topo::GatewayType::kRed);
  };
  if (replay.replay_mode()) return replay.run_replay(run);

  exp::RunnerOptions ropts = opt.runner_options();
  replay.configure_runner(ropts);
  exp::Runner runner(ropts);
  const exp::Results results = runner.run(grid, run);

  const auto t2 = model::theorem2_droptail_bounds(27);
  const auto t1 = model::theorem1_red_bounds(27);
  std::printf("theorem bands, n=27: drop-tail (%.2f, %.0f)  RED (%.2f, %.1f)\n",
              t2.lo, t2.hi, t1.lo, t1.hi);
  std::printf("band check: per-%gs window, app-limited flows excluded\n\n",
              kFairnessWindow);
  std::printf("%-12s %-34s %9s %9s %9s %10s\n", "case", "params", "RLA/WTCP",
              "jain.min", "jain.mean", "in-band");
  for (const auto& r : results.runs()) {
    if (r.spec.replicate != 0) continue;
    if (!r.ok) {
      std::printf("%-12s %-34s  FAILED: %s\n", r.spec.name.c_str(),
                  r.spec.point.id().c_str(), r.error.c_str());
      continue;
    }
    char inband[24];
    std::snprintf(inband, sizeof inband, "%.0f/%.0f",
                  r.metrics.get("band.inband", 0.0),
                  r.metrics.get("band.checked", 0.0));
    std::printf("%-12s %-34s %9.2f %9.3f %9.3f %10s\n", r.spec.name.c_str(),
                r.spec.point.id().c_str(),
                r.metrics.get("fairness_ratio", 0.0),
                r.metrics.get("jain.min", -1.0),
                r.metrics.get("jain.mean", -1.0), inband);
  }

  std::printf("\nworkload activity (replicate 0):\n");
  for (const auto& r : results.runs()) {
    if (r.spec.replicate != 0 || !r.ok) continue;
    const double ws = r.metrics.get("web.flows_started", 0.0);
    const double os = r.metrics.get("onoff.sent", 0.0);
    if (ws == 0.0 && os == 0.0) continue;
    std::printf(
        "  %-12s %-34s web=%.0f/%.0f flows  onoff=%.0f sent %.0f rcvd\n",
        r.spec.name.c_str(), r.spec.point.id().c_str(),
        r.metrics.get("web.flows_completed", 0.0), ws, os,
        r.metrics.get("onoff.rcvd", 0.0));
  }

  // Fairness-trajectory snapshot: Jain minima and band hits per case
  // (replicate 0), tracked across PRs via the repo-root BENCH_workload.json.
  std::vector<std::pair<std::string, double>> traj;
  for (const auto& r : results.runs()) {
    if (r.spec.replicate != 0 || !r.ok) continue;
    traj.emplace_back(r.spec.name + "." + r.spec.point.get("gw", "?") +
                          ".jain_min",
                      r.metrics.get("jain.min", -1.0));
    traj.emplace_back(r.spec.name + "." + r.spec.point.get("gw", "?") +
                          ".band_inband",
                      r.metrics.get("band.inband", 0.0));
  }

  const bool io_ok =
      bench::finish_grid_output("workload", opt, results,
                                runner.last_wall_seconds(),
                                {{"fairness_window", "10"}}) &
      bench::write_trajectory(opt, "workload", runner.last_wall_seconds(),
                              traj);
  return (results.num_errors() || !io_ok) ? 1 : 0;
}
