#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rlacast::bench {

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> double {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return std::atof(argv[++i]);
    };
    if (arg == "--full") {
      opt.full = true;
      opt.duration = 3000.0;
      opt.warmup = 100.0;
    } else if (arg == "--seed") {
      opt.seed = static_cast<std::uint64_t>(next_value("--seed"));
    } else if (arg == "--duration") {
      opt.duration = next_value("--duration");
    } else if (arg == "--warmup") {
      opt.warmup = next_value("--warmup");
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--full] [--seed N] [--duration S] [--warmup S]\n"
          "  --full   paper-length run (3000 s, statistics after 100 s)\n",
          argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      std::exit(2);
    }
  }
  return opt;
}

std::string render_fig7_style_table(const std::vector<CaseColumn>& cases) {
  using stats::Table;
  std::vector<std::string> header{"row"};
  for (const auto& c : cases) header.push_back(c.name);
  Table t(std::move(header));

  auto add = [&](const std::string& label, auto getter) {
    std::vector<std::string> row{label};
    for (const auto& c : cases) row.push_back(getter(c));
    t.add_row(std::move(row));
  };

  add("RLA thrput (pkt/s)",
      [](const CaseColumn& c) { return Table::num(c.rla.throughput_pps); });
  add("RLA cwnd", [](const CaseColumn& c) { return Table::num(c.rla.avg_cwnd); });
  add("RLA RTT (s)",
      [](const CaseColumn& c) { return Table::num(c.rla.avg_rtt, 3); });
  add("RLA #cong signals", [](const CaseColumn& c) {
    return std::to_string(c.rla.cong_signals);
  });
  add("RLA #wnd cut",
      [](const CaseColumn& c) { return std::to_string(c.rla.window_cuts); });
  add("RLA #forced cut",
      [](const CaseColumn& c) { return std::to_string(c.rla.forced_cuts); });
  add("WTCP thrput (pkt/s)",
      [](const CaseColumn& c) { return Table::num(c.wtcp.throughput_pps); });
  add("WTCP cwnd", [](const CaseColumn& c) { return Table::num(c.wtcp.avg_cwnd); });
  add("WTCP RTT (s)",
      [](const CaseColumn& c) { return Table::num(c.wtcp.avg_rtt, 3); });
  add("WTCP #wnd cut",
      [](const CaseColumn& c) { return std::to_string(c.wtcp.window_cuts); });
  add("BTCP thrput (pkt/s)",
      [](const CaseColumn& c) { return Table::num(c.btcp.throughput_pps); });
  add("BTCP cwnd", [](const CaseColumn& c) { return Table::num(c.btcp.avg_cwnd); });
  add("BTCP RTT (s)",
      [](const CaseColumn& c) { return Table::num(c.btcp.avg_rtt, 3); });
  add("BTCP #wnd cut",
      [](const CaseColumn& c) { return std::to_string(c.btcp.window_cuts); });
  return t.render();
}

void print_header(const std::string& title, const Options& opt) {
  std::printf("==================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("run: %.0f s, statistics after %.0f s, seed %llu%s\n",
              opt.duration, opt.warmup,
              static_cast<unsigned long long>(opt.seed),
              opt.full ? " (paper-length)" : " (scaled; use --full)");
  std::printf("==================================================\n");
}

}  // namespace rlacast::bench
