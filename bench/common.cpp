#include "common.hpp"

#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace rlacast::bench {

int Options::resolved_jobs() const {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<int>(hw) : 1;
}

exp::RunnerOptions Options::runner_options() const {
  exp::RunnerOptions r;
  r.jobs = resolved_jobs();
  r.progress = (r.jobs > 1 || replicates > 1) && isatty(fileno(stderr));
  r.timeout_seconds = run_timeout;
  r.max_retries = retries;
  if (isolate) {
    r.isolate = true;
    r.crash_dir = crash_dir;
    r.isolate_cpu_seconds = isolate_cpu;
    r.isolate_mem_mb = isolate_mem_mb;
  }
  return r;
}

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_raw = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    auto next_value = [&](const char* flag) -> double {
      return std::atof(next_raw(flag));
    };
    if (arg == "--full") {
      opt.full = true;
      opt.duration = 3000.0;
      opt.warmup = 100.0;
    } else if (arg == "--seed") {
      opt.seed = static_cast<std::uint64_t>(next_value("--seed"));
    } else if (arg == "--duration") {
      opt.duration = next_value("--duration");
    } else if (arg == "--warmup") {
      opt.warmup = next_value("--warmup");
    } else if (arg == "--jobs") {
      opt.jobs = std::atoi(next_raw("--jobs"));
      if (opt.jobs < 0) {
        std::fprintf(stderr, "--jobs must be >= 0 (0 = hardware)\n");
        std::exit(2);
      }
    } else if (arg == "--replicates") {
      opt.replicates = std::atoi(next_raw("--replicates"));
      if (opt.replicates < 1) {
        std::fprintf(stderr, "--replicates must be >= 1\n");
        std::exit(2);
      }
    } else if (arg == "--json") {
      opt.json_path = next_raw("--json");
    } else if (arg == "--timeout") {
      opt.run_timeout = next_value("--timeout");
      if (opt.run_timeout < 0.0) {
        std::fprintf(stderr, "--timeout must be >= 0 (0 = off)\n");
        std::exit(2);
      }
    } else if (arg == "--retries") {
      opt.retries = std::atoi(next_raw("--retries"));
      if (opt.retries < 0) {
        std::fprintf(stderr, "--retries must be >= 0\n");
        std::exit(2);
      }
    } else if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--chaos") {
      opt.chaos = true;
    } else if (arg == "--chaos-cases") {
      opt.chaos_cases = std::atoi(next_raw("--chaos-cases"));
      if (opt.chaos_cases < 1) {
        std::fprintf(stderr, "--chaos-cases must be >= 1\n");
        std::exit(2);
      }
    } else if (arg == "--record-journal") {
      opt.record_journal_dir = next_raw("--record-journal");
    } else if (arg == "--replay") {
      opt.replay_path = next_raw("--replay");
    } else if (arg == "--checkpoint-events") {
      const long long n = std::atoll(next_raw("--checkpoint-events"));
      if (n < 0) {
        std::fprintf(stderr, "--checkpoint-events must be >= 0 (0 = final only)\n");
        std::exit(2);
      }
      opt.checkpoint_events = static_cast<std::uint64_t>(n);
    } else if (arg == "--isolate") {
      opt.isolate = true;
    } else if (arg == "--crash-dir") {
      opt.crash_dir = next_raw("--crash-dir");
    } else if (arg == "--isolate-cpu") {
      opt.isolate_cpu = next_value("--isolate-cpu");
      if (opt.isolate_cpu < 0.0) {
        std::fprintf(stderr, "--isolate-cpu must be >= 0 (0 = unlimited)\n");
        std::exit(2);
      }
    } else if (arg == "--trajectory") {
      opt.trajectory_path = next_raw("--trajectory");
    } else if (arg == "--isolate-mem") {
      const long long mb = std::atoll(next_raw("--isolate-mem"));
      if (mb < 0) {
        std::fprintf(stderr, "--isolate-mem must be >= 0 (0 = unlimited)\n");
        std::exit(2);
      }
      opt.isolate_mem_mb = static_cast<std::size_t>(mb);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--full] [--seed N] [--duration S] [--warmup S]\n"
          "          [--jobs N] [--replicates R] [--json PATH]\n"
          "          [--timeout S] [--retries N] [--smoke]\n"
          "          [--chaos] [--chaos-cases N]\n"
          "          [--record-journal DIR] [--replay PATH]\n"
          "          [--checkpoint-events N] [--isolate] [--crash-dir DIR]\n"
          "          [--isolate-cpu S] [--isolate-mem MB] [--trajectory PATH]\n"
          "  --full        paper-length run (3000 s, statistics after 100 s)\n"
          "  --jobs N      run cases/replicates on N threads (0 = hardware)\n"
          "  --replicates R  repeat each case R times with derived seeds\n"
          "  --json PATH   write machine-readable results.json\n"
          "  --timeout S   per-run wall-clock limit; overdue runs fail (0 = off)\n"
          "  --retries N   extra attempts for transiently failing runs\n"
          "  --smoke       CI-sized quick pass (bench-specific reduction)\n"
          "  --chaos       randomized adversary/impairment soak (supported benches)\n"
          "  --chaos-cases N  chaos scenarios per defense arm (default 12)\n"
          "  --record-journal DIR  write a replay journal per run into DIR\n"
          "  --replay PATH  re-execute a journaled run, verify determinism\n"
          "  --checkpoint-events N  checkpoint cadence in dispatches\n"
          "  --isolate     fork-sandbox every run; crashes are contained\n"
          "  --crash-dir DIR  crash reports + journals (default results/crashes)\n"
          "  --isolate-cpu S  RLIMIT_CPU per isolated run (0 = unlimited)\n"
          "  --isolate-mem MB  RLIMIT_AS per isolated run (0 = unlimited)\n"
          "  --trajectory PATH  write a run-health JSON snapshot to PATH\n",
          argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      std::exit(2);
    }
  }
  return opt;
}

std::string render_fig7_style_table(const std::vector<CaseColumn>& cases) {
  using stats::Table;
  std::vector<std::string> header{"row"};
  for (const auto& c : cases) header.push_back(c.name);
  Table t(std::move(header));

  auto add = [&](const std::string& label, auto getter) {
    std::vector<std::string> row{label};
    for (const auto& c : cases) row.push_back(getter(c));
    t.add_row(std::move(row));
  };

  add("RLA thrput (pkt/s)",
      [](const CaseColumn& c) { return Table::num(c.rla.throughput_pps); });
  add("RLA cwnd", [](const CaseColumn& c) { return Table::num(c.rla.avg_cwnd); });
  add("RLA RTT (s)",
      [](const CaseColumn& c) { return Table::num(c.rla.avg_rtt, 3); });
  add("RLA #cong signals", [](const CaseColumn& c) {
    return std::to_string(c.rla.cong_signals);
  });
  add("RLA #wnd cut",
      [](const CaseColumn& c) { return std::to_string(c.rla.window_cuts); });
  add("RLA #forced cut",
      [](const CaseColumn& c) { return std::to_string(c.rla.forced_cuts); });
  add("WTCP thrput (pkt/s)",
      [](const CaseColumn& c) { return Table::num(c.wtcp.throughput_pps); });
  add("WTCP cwnd", [](const CaseColumn& c) { return Table::num(c.wtcp.avg_cwnd); });
  add("WTCP RTT (s)",
      [](const CaseColumn& c) { return Table::num(c.wtcp.avg_rtt, 3); });
  add("WTCP #wnd cut",
      [](const CaseColumn& c) { return std::to_string(c.wtcp.window_cuts); });
  add("BTCP thrput (pkt/s)",
      [](const CaseColumn& c) { return Table::num(c.btcp.throughput_pps); });
  add("BTCP cwnd", [](const CaseColumn& c) { return Table::num(c.btcp.avg_cwnd); });
  add("BTCP RTT (s)",
      [](const CaseColumn& c) { return Table::num(c.btcp.avg_rtt, 3); });
  add("BTCP #wnd cut",
      [](const CaseColumn& c) { return std::to_string(c.btcp.window_cuts); });
  return t.render();
}

void print_header(const std::string& title, const Options& opt) {
  std::printf("==================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("run: %.0f s, statistics after %.0f s, seed %llu%s\n",
              opt.duration, opt.warmup,
              static_cast<unsigned long long>(opt.seed),
              opt.full ? " (paper-length)" : " (scaled; use --full)");
  std::printf("==================================================\n");
}

namespace {

exp::Metrics flow_metrics(exp::Metrics m, const char* prefix,
                          const topo::FlowRow& f, bool full_block) {
  const std::string p(prefix);
  m.set(p + ".thrput_pps", f.throughput_pps);
  m.set(p + ".cwnd", f.avg_cwnd);
  m.set(p + ".rtt_s", f.avg_rtt);
  if (full_block) {
    m.set(p + ".cong_signals", static_cast<double>(f.cong_signals));
    m.set(p + ".forced_cuts", static_cast<double>(f.forced_cuts));
  }
  m.set(p + ".wnd_cuts", static_cast<double>(f.window_cuts));
  return m;
}

topo::FlowRow flow_from_metrics(const exp::Metrics& m, const char* prefix) {
  const std::string p(prefix);
  topo::FlowRow f;
  f.throughput_pps = m.get(p + ".thrput_pps", 0.0);
  f.avg_cwnd = m.get(p + ".cwnd", 0.0);
  f.avg_rtt = m.get(p + ".rtt_s", 0.0);
  f.cong_signals = static_cast<std::uint64_t>(m.get(p + ".cong_signals", 0.0));
  f.window_cuts = static_cast<std::uint64_t>(m.get(p + ".wnd_cuts", 0.0));
  f.forced_cuts = static_cast<std::uint64_t>(m.get(p + ".forced_cuts", 0.0));
  return f;
}

}  // namespace

exp::Metrics metrics_from_column(const CaseColumn& c) {
  exp::Metrics m;
  m = flow_metrics(std::move(m), "rla", c.rla, /*full_block=*/true);
  m = flow_metrics(std::move(m), "wtcp", c.wtcp, /*full_block=*/false);
  m = flow_metrics(std::move(m), "btcp", c.btcp, /*full_block=*/false);
  return m;
}

CaseColumn column_from_metrics(std::string name, const exp::Metrics& m) {
  CaseColumn c;
  c.name = std::move(name);
  c.rla = flow_from_metrics(m, "rla");
  c.wtcp = flow_from_metrics(m, "wtcp");
  c.btcp = flow_from_metrics(m, "btcp");
  return c;
}

std::vector<CaseColumn> replicate0_columns(const exp::Results& results) {
  std::vector<CaseColumn> cols;
  for (const auto& r : results.runs()) {
    if (r.spec.replicate != 0) continue;
    if (!r.ok) {
      std::fprintf(stderr, "warning: case %s failed: %s\n",
                   r.spec.name.c_str(), r.error.c_str());
      continue;
    }
    cols.push_back(column_from_metrics(r.spec.name, r.metrics));
  }
  return cols;
}

bool finish_grid_output(
    const std::string& experiment, const Options& opt, const exp::Results& results,
    double wall_seconds,
    std::vector<std::pair<std::string, std::string>> spec_extra) {
  if (opt.replicates > 1) {
    std::printf("replicate aggregates (n=%d, mean ±95%% CI):\n%s\n",
                opt.replicates, results.render_aggregate_table().c_str());
  }
  if (const std::size_t errors = results.num_errors()) {
    std::printf("WARNING: %zu of %zu runs failed (see results.json / stderr)\n",
                errors, results.runs().size());
  }
  if (opt.json_path.empty()) return true;
  auto extra = std::move(spec_extra);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", opt.duration);
  extra.emplace_back("duration_s", buf);
  std::snprintf(buf, sizeof(buf), "%g", opt.warmup);
  extra.emplace_back("warmup_s", buf);
  if (!results.write_json(opt.json_path, experiment, opt.seed, opt.replicates,
                          opt.resolved_jobs(), wall_seconds, extra)) {
    return false;
  }
  std::printf("exp: wrote %s\n", opt.json_path.c_str());
  return true;
}

double peak_rss_mib() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

bool write_trajectory(
    const Options& opt, const std::string& experiment, double wall_seconds,
    const std::vector<std::pair<std::string, double>>& metrics,
    double sender_bytes_per_receiver) {
  if (opt.trajectory_path.empty()) return true;
  std::FILE* f = std::fopen(opt.trajectory_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "warning: cannot write trajectory %s\n",
                 opt.trajectory_path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"experiment\": \"%s\",\n", experiment.c_str());
  std::fprintf(f,
               "  \"config\": {\"duration_s\": %g, \"warmup_s\": %g, "
               "\"seed\": %llu, \"jobs\": %d, \"smoke\": %s},\n",
               opt.duration, opt.warmup,
               static_cast<unsigned long long>(opt.seed), opt.resolved_jobs(),
               opt.smoke ? "true" : "false");
  std::fprintf(f, "  \"metrics\": {\n");
  std::fprintf(f, "    \"wall_seconds\": %.3f,\n", wall_seconds);
  std::fprintf(f, "    \"peak_rss_mib\": %.1f", peak_rss_mib());
  if (sender_bytes_per_receiver >= 0.0)
    std::fprintf(f, ",\n    \"sender_bytes_per_receiver\": %g",
                 sender_bytes_per_receiver);
  for (const auto& [key, value] : metrics)
    std::fprintf(f, ",\n    \"%s\": %g", key.c_str(), value);
  std::fprintf(f, "\n  }\n}\n");
  std::fclose(f);
  std::printf("trajectory: wrote %s\n", opt.trajectory_path.c_str());
  return true;
}

}  // namespace rlacast::bench
