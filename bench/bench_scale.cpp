// Scale benchmark: the Theorem I/II bands beyond the paper's 27 receivers,
// and the sender-memory / census-cost headlines of the sublinear receiver
// state refactor (ISSUE 9 tentpole).
//
// Phase 1 — full simulations on topo::run_big_tree (collapsed group leaves,
// one sender census entry and ACK stream per member) sweeping
// n in {27, 10^3, 10^4} (+ 10^5 with --full), drop-tail AND RED, in both
// census modes (kExact everywhere; kSampled spot-checked at 10^3 / 10^4).
// Each run checks
//   * the Theorem band for its n: RLA/worst-TCP throughput inside
//     (1/3, sqrt(3n)) under RED, (1/4, 2n) under drop-tail;
//   * sender bytes per receiver against the historical one-scoreboard-
//     per-receiver baseline (RlaSender::baseline_state_bytes).
//
// Phase 2 — census microbenchmark: ns per congestion signal (on_signal +
// recompute + srtt_max) at n in {10^4, 10^5, 10^6} for kExact vs kSampled,
// demonstrating the O(N) -> O(reservoir) census scan. 10^6 receivers run
// here only (state + signal plumbing, no packet simulation) — that is the
// million-leaf smoke level.
//
// Exp-runner based: `--jobs N`, `--replicates R`, `--json PATH`, `--smoke`
// (n <= 10^3, CI-sized), `--full` (adds n = 10^5), plus the replay flags
// (--record-journal / --replay) via bench/replay_support.hpp. The
// --trajectory snapshot (BENCH_scale.json) carries the per-case band and
// memory metrics and the standard `sender_bytes_per_receiver` headline.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "cc/troubled_census.hpp"
#include "common.hpp"
#include "exp/runner.hpp"
#include "model/formulas.hpp"
#include "replay_support.hpp"
#include "topo/big_tree.hpp"

using namespace rlacast;

namespace {

struct ScaleCase {
  int n;
  int group_size;
  double duration;
  double warmup;
};

// Simulated seconds shrink as n grows: at 10^4 members the sender hears
// ~10^6 ACKs per simulated second, so a few seconds already cover hundreds
// of congestion epochs on a 0.2 s RTT.
constexpr ScaleCase kScaleCases[] = {
    {27, 1, 40.0, 10.0},
    {1000, 25, 20.0, 5.0},
    {10000, 100, 20.0, 8.0},
    {100000, 500, 5.0, 3.0},
};

constexpr std::size_t kSampledReservoir = 256;

exp::Metrics scale_metrics(const topo::BigTreeResult& res, int n, bool red,
                           double wall) {
  exp::Metrics m;
  m.set("n", static_cast<double>(n));
  m.set("nodes", static_cast<double>(res.nodes));
  m.set("groups", static_cast<double>(res.groups));
  m.set("rla.thrput_pps", res.rla.throughput_pps);
  m.set("wtcp.thrput_pps", res.worst_tcp().throughput_pps);
  m.set("btcp.thrput_pps", res.best_tcp().throughput_pps);
  const double ratio = res.worst_tcp().throughput_pps > 0.0
                           ? res.rla.throughput_pps /
                                 res.worst_tcp().throughput_pps
                           : 0.0;
  const auto band = red ? model::theorem1_red_bounds(n)
                        : model::theorem2_droptail_bounds(n);
  m.set("fairness_ratio", ratio);
  m.set("band.lo", band.lo);
  m.set("band.hi", band.hi);
  m.set("band.inband", band.contains(ratio) ? 1.0 : 0.0);
  m.set("drop_rate", res.bottleneck_drop_rate);
  m.set("rla.cwnd", res.rla.avg_cwnd);
  m.set("rla.signals", static_cast<double>(res.rla.cong_signals));
  m.set("troubled", static_cast<double>(res.troubled_final));
  m.set("active", static_cast<double>(res.active_final));
  m.set("rla.timeouts", static_cast<double>(res.rla.timeouts));
  m.set("rla.window_cuts", static_cast<double>(res.rla.window_cuts));
  m.set("rla.forced_cuts", static_cast<double>(res.rla.forced_cuts));
  m.set("acks", static_cast<double>(res.acks));
  m.set("mcast_rexmits", static_cast<double>(res.mcast_rexmits));
  m.set("ucast_rexmits", static_cast<double>(res.ucast_rexmits));

  m.set("state_bytes", static_cast<double>(res.sender_state_bytes));
  m.set("state_bytes_per_rcvr",
        static_cast<double>(res.sender_state_bytes) / n);
  m.set("state_bytes_hiwater",
        static_cast<double>(res.sender_state_bytes_hiwater));
  m.set("baseline_bytes", static_cast<double>(res.baseline_state_bytes));
  m.set("baseline_ratio",
        res.sender_state_bytes > 0
            ? static_cast<double>(res.baseline_state_bytes) /
                  static_cast<double>(res.sender_state_bytes)
            : 0.0);
  m.set("materialized", static_cast<double>(res.materialized_final));
  m.set("materialized_hiwater",
        static_cast<double>(res.materialized_hiwater));

  m.set("events", static_cast<double>(res.events));
  m.set("wall_s", wall);
  m.set("events_per_sec",
        wall > 0.0 ? static_cast<double>(res.events) / wall : 0.0);
  // End-to-end sender CPU per ACK: total wall clock over ACKs heard. The
  // census microbench below isolates the per-signal scan; this is the
  // whole-pipeline number (packet sim + scoreboard + census + timers).
  m.set("cpu_us_per_ack",
        res.acks > 0 ? wall * 1e6 / static_cast<double>(res.acks) : 0.0);
  return m;
}

/// Census-only microbenchmark: one signal = on_signal + recompute +
/// srtt_max, the exact per-signal work of RlaSender::handle_congestion_
/// signal. Returns ns/signal.
double census_ns_per_signal(int n, cc::CensusMode mode, double* bytes_per) {
  cc::TroubledCensus census(20.0, 0.25);
  cc::CensusSampleParams sp;
  sp.mode = mode;
  sp.reservoir = kSampledReservoir;
  census.configure_sampling(sp);
  census.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    census.add_receiver();
    census.note_srtt(i, 0.1 + 0.0001 * (i % 512));
  }
  // Deterministic member sequence (LCG); time grows so troubled epochs age.
  std::uint64_t x = 0x2545F4914F6CDD1DULL;
  const long iters =
      mode == cc::CensusMode::kExact
          ? std::max(20L, 20000000L / n)  // O(n) scans: bound total work
          : 20000L;                       // O(reservoir) per signal
  double t = 1.0;
  const auto t0 = std::chrono::steady_clock::now();
  for (long it = 0; it < iters; ++it) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const int member = static_cast<int>((x >> 33) % static_cast<std::uint64_t>(n));
    t += 0.001;
    census.on_signal(member, t);
    census.recompute(t);
    (void)census.srtt_max();
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (bytes_per != nullptr)
    *bytes_per = static_cast<double>(census.state_bytes()) / n;
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(iters);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::ReplayCoordinator replay("scale", opt);
  bench::print_header(
      "Scale: Theorem I/II bands and sender bytes/receiver at n >> 27", opt);

  // --smoke trims to n <= 10^3 at 40% duration; --full adds n = 10^5.
  const double tscale = opt.smoke ? 0.4 : 1.0;
  exp::Grid grid;
  grid.master_seed(opt.seed).replicates(opt.replicates);
  auto add_case = [&](const ScaleCase& sc, const char* gw,
                      const char* census, const std::string& suffix = "") {
    char dur[32], warm[32];
    std::snprintf(dur, sizeof dur, "%g", sc.duration * tscale);
    std::snprintf(warm, sizeof warm, "%g", sc.warmup * tscale);
    grid.add_case(std::string(gw) + "-n" + std::to_string(sc.n) + "-" +
                      census + suffix,
                  exp::Point{}
                      .set("gw", gw)
                      .set("n", std::to_string(sc.n))
                      .set("g", std::to_string(sc.group_size))
                      .set("census", census)
                      .set("dur", dur)
                      .set("warm", warm));
  };
  for (const char* gw : {"red", "droptail"}) {
    for (const ScaleCase& sc : kScaleCases) {
      if (opt.smoke && sc.n > 1000) continue;
      if (!opt.full && sc.n > 10000) continue;
      add_case(sc, gw, "exact");
      // Sampled census spot checks where reservoir << n actually holds.
      if (sc.n >= 1000 && sc.n <= 10000) add_case(sc, gw, "sampled");
    }
  }
  // Group-collapse-factor sweep at n = 10^4 (RED, exact census): g is how
  // many members a collapsed leaf aggregates, so n/g is the simulated
  // fan-out. The band must hold at every g, and the sweep shows how much
  // of the events/s and CPU-per-ACK headline is collapse artifact vs
  // genuine per-member cost (case names carry a -gN suffix so the default
  // g=100 case keeps its trajectory keys).
  if (!opt.smoke) {
    for (int g : {25, 50, 200, 400})
      add_case({10000, g, 20.0, 8.0}, "red", "exact",
               "-g" + std::to_string(g));
  }

  const exp::RunFn run = [&](const exp::RunSpec& spec) {
    topo::BigTreeConfig cfg;
    cfg.receivers = std::atoi(spec.point.get("n", "1000").c_str());
    cfg.group_size = std::atoi(spec.point.get("g", "25").c_str());
    cfg.gateway = spec.point.get("gw", "red") == "red"
                      ? topo::GatewayType::kRed
                      : topo::GatewayType::kDropTail;
    cfg.duration = std::atof(spec.point.get("dur", "20").c_str());
    cfg.warmup = std::atof(spec.point.get("warm", "5").c_str());
    cfg.seed = spec.seed;
    if (spec.point.get("census", "exact") == "sampled") {
      cfg.rla.census.mode = cc::CensusMode::kSampled;
      cfg.rla.census.reservoir = kSampledReservoir;
    }

    auto session = replay.session(spec);
    cfg.instrument = session->instrument();
    const auto t0 = std::chrono::steady_clock::now();
    const auto res = topo::run_big_tree(cfg);
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    session->finish();
    return scale_metrics(res, cfg.receivers,
                         cfg.gateway == topo::GatewayType::kRed, wall);
  };
  if (replay.replay_mode()) return replay.run_replay(run);

  exp::RunnerOptions ropts = opt.runner_options();
  replay.configure_runner(ropts);
  exp::Runner runner(ropts);
  const exp::Results results = runner.run(grid, run);

  std::printf("%-22s %8s %9s %16s %8s %9s %7s %9s %8s\n", "case", "RLA/WTCP",
              "band", "in-band", "B/rcvr", "baseline", "mat.hi", "drop",
              "us/ACK");
  int bands_checked = 0;
  int bands_in = 0;
  for (const auto& r : results.runs()) {
    if (r.spec.replicate != 0) continue;
    if (!r.ok) {
      std::printf("%-22s FAILED: %s\n", r.spec.name.c_str(), r.error.c_str());
      continue;
    }
    char band[40];
    std::snprintf(band, sizeof band, "(%.2f, %.0f)",
                  r.metrics.get("band.lo", 0.0), r.metrics.get("band.hi", 0.0));
    ++bands_checked;
    const bool in = r.metrics.get("band.inband", 0.0) > 0.0;
    if (in) ++bands_in;
    std::printf("%-22s %8.2f %16s %9s %8.0f %8.1fx %7.0f %8.4f %8.2f\n",
                r.spec.name.c_str(), r.metrics.get("fairness_ratio", 0.0),
                band, in ? "yes" : "NO",
                r.metrics.get("state_bytes_per_rcvr", 0.0),
                r.metrics.get("baseline_ratio", 0.0),
                r.metrics.get("materialized_hiwater", 0.0),
                r.metrics.get("drop_rate", 0.0),
                r.metrics.get("cpu_us_per_ack", 0.0));
  }
  std::printf("\nband checks: %d/%d in band\n", bands_in, bands_checked);

  // Phase 2: census microbenchmark (kExact O(n) vs kSampled O(reservoir)).
  std::printf("\ncensus cost per congestion signal (reservoir %zu):\n",
              kSampledReservoir);
  std::printf("%10s %14s %14s %12s\n", "n", "exact ns/sig", "sampled ns/sig",
              "B/rcvr");
  std::vector<std::pair<std::string, double>> traj;
  const int census_ns[] = {10000, 100000, 1000000};
  for (int n : census_ns) {
    if (opt.smoke && n > 100000) break;
    double bytes_per = 0.0;
    const double exact = census_ns_per_signal(n, cc::CensusMode::kExact, nullptr);
    const double sampled =
        census_ns_per_signal(n, cc::CensusMode::kSampled, &bytes_per);
    std::printf("%10d %14.0f %14.0f %12.1f\n", n, exact, sampled, bytes_per);
    traj.emplace_back("census.exact_ns_n" + std::to_string(n), exact);
    traj.emplace_back("census.sampled_ns_n" + std::to_string(n), sampled);
  }

  // Trajectory: band verdicts and the memory headline per case, plus the
  // standard sender_bytes_per_receiver field from the largest exact RED run.
  double headline_bpr = -1.0;
  double headline_n = 0.0;
  for (const auto& r : results.runs()) {
    if (r.spec.replicate != 0 || !r.ok) continue;
    traj.emplace_back(r.spec.name + ".ratio",
                      r.metrics.get("fairness_ratio", 0.0));
    traj.emplace_back(r.spec.name + ".inband",
                      r.metrics.get("band.inband", 0.0));
    traj.emplace_back(r.spec.name + ".bytes_per_rcvr",
                      r.metrics.get("state_bytes_per_rcvr", 0.0));
    traj.emplace_back(r.spec.name + ".baseline_ratio",
                      r.metrics.get("baseline_ratio", 0.0));
    traj.emplace_back(r.spec.name + ".events_per_sec",
                      r.metrics.get("events_per_sec", 0.0));
    traj.emplace_back(r.spec.name + ".cpu_us_per_ack",
                      r.metrics.get("cpu_us_per_ack", 0.0));
    if (r.spec.point.get("gw", "") == "red" &&
        r.spec.point.get("census", "") == "exact" &&
        r.metrics.get("n", 0.0) > headline_n) {
      headline_n = r.metrics.get("n", 0.0);
      headline_bpr = r.metrics.get("state_bytes_per_rcvr", -1.0);
    }
  }

  const bool io_ok =
      bench::finish_grid_output("scale", opt, results,
                                runner.last_wall_seconds(),
                                {{"reservoir",
                                  std::to_string(kSampledReservoir)}}) &
      bench::write_trajectory(opt, "scale", runner.last_wall_seconds(), traj,
                              headline_bpr);
  return (results.num_errors() || bands_in != bands_checked || !io_ok) ? 1 : 0;
}
