// E10: the baseline comparison motivating the RLA (§1).
//
// LTRC and MBFC (rate-based threshold schemes) and the naive listener
// (window-based, obeys every signal) against competing TCP on the same
// star topology, across loss-threshold choices.  The shapes §1 claims:
//  * threshold schemes are exquisitely sensitive to the threshold — too low
//    starves the session, too high tramples TCP;
//  * the naive listener's throughput collapses as receivers are added;
//  * the RLA needs no topology-specific tuning and stays bounded.
#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/ltrc.hpp"
#include "baselines/mbfc.hpp"
#include "baselines/rate_receiver.hpp"
#include "baselines/rl_rate.hpp"
#include "common.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "stats/table.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"
#include "topo/flat_tree.hpp"

using namespace rlacast;

namespace {

/// Star with shared trunk bottleneck: 1 multicast (rate-based) + 1 TCP per
/// leaf. Returns (multicast goodput at slowest receiver, worst TCP thrput).
struct BaselineResult {
  double mcast_pps;
  double wtcp_pps;
};

template <typename Sender, typename Params>
BaselineResult run_rate_baseline(int n, double trunk_pps, Params params,
                                 const bench::Options& opt,
                                 int slow_leaves = 0,
                                 double slow_leaf_pps = 0.0) {
  sim::Simulator sim(opt.seed);
  net::Network net(sim);
  const auto s = net.add_node(), hub = net.add_node();
  net::LinkConfig trunk;
  trunk.bandwidth_bps = trunk_pps * 8000.0;
  trunk.delay = 0.01;
  trunk.buffer_pkts = 20;
  net.connect(s, hub, trunk);
  std::vector<net::NodeId> leaves;
  for (int i = 0; i < n; ++i) {
    leaves.push_back(net.add_node());
    net::LinkConfig leg;
    leg.bandwidth_bps = i < slow_leaves ? slow_leaf_pps * 8000.0 : 1e9;
    leg.delay = 0.05;
    net.connect(hub, leaves.back(), leg);
  }
  net.build_routes();

  Sender snd(net, s, 100, /*group=*/1, /*flow=*/1, params);
  std::vector<std::unique_ptr<baselines::RateReceiver>> rcvrs;
  for (int i = 0; i < n; ++i) {
    net.join_group(1, s, leaves[size_t(i)]);
    const int idx = snd.add_receiver();
    rcvrs.push_back(std::make_unique<baselines::RateReceiver>(
        net, leaves[size_t(i)], 2, 1, s, 100, idx));
    rcvrs.back()->start_at(0.5);
  }
  std::vector<std::unique_ptr<tcp::TcpSender>> tcps;
  std::vector<std::unique_ptr<tcp::TcpReceiver>> tcprs;
  for (int i = 0; i < n; ++i) {
    const net::PortId port = 200 + i;
    tcprs.push_back(
        std::make_unique<tcp::TcpReceiver>(net, leaves[size_t(i)], port));
    tcps.push_back(std::make_unique<tcp::TcpSender>(net, s, port,
                                                    leaves[size_t(i)], port,
                                                    10 + i, tcp::TcpParams{}));
    tcps.back()->start_at(0.1 * i);
  }
  snd.start_at(0.05);

  std::vector<std::uint64_t> base_rx(static_cast<std::size_t>(n), 0);
  sim.at(opt.warmup, [&] {
    for (auto& t : tcps) t->measurement().begin_measurement(sim.now());
    for (int i = 0; i < n; ++i)
      base_rx[size_t(i)] = rcvrs[size_t(i)]->data_packets_received();
  });
  sim.run_until(opt.duration);

  double slowest = 1e18;
  for (int i = 0; i < n; ++i) {
    const double got = static_cast<double>(
        rcvrs[size_t(i)]->data_packets_received() - base_rx[size_t(i)]);
    slowest = std::min(slowest, got / opt.measured_seconds());
  }
  double wtcp = 1e18;
  for (auto& t : tcps)
    wtcp = std::min(wtcp, t->measurement().throughput_pps(opt.duration));
  return {slowest, wtcp};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Baselines: LTRC / MBFC thresholds vs RLA (E10)", opt);

  const int n = 8;
  const double trunk_pps = 100.0 * (n + 1);  // fair share 100 pkt/s

  // ---- threshold sensitivity of LTRC ------------------------------------------
  std::printf("LTRC loss-threshold sweep (8 receivers, fair share 100 "
              "pkt/s):\n");
  stats::Table t1({"loss threshold", "mcast pkt/s", "worst TCP pkt/s",
                   "mcast/TCP ratio"});
  for (double thresh : {0.002, 0.01, 0.05, 0.20}) {
    baselines::LtrcParams p;
    p.loss_threshold = thresh;
    p.rate.initial_rate_pps = 50.0;
    const auto r = run_rate_baseline<baselines::LtrcSender>(n, trunk_pps, p, opt);
    t1.add_row({stats::Table::num(thresh, 3), stats::Table::num(r.mcast_pps),
                stats::Table::num(r.wtcp_pps),
                stats::Table::num(r.wtcp_pps > 0 ? r.mcast_pps / r.wtcp_pps : 0.0,
                                  2)});
  }
  std::printf("%s\n", t1.render().c_str());

  // ---- MBFC population-threshold sweep ----------------------------------------
  // Two of the eight receivers sit behind slow branches (fraction 0.25
  // congested): the population threshold decides whether the sender averages
  // them away or tracks them — §1's central criticism of the scheme.
  std::printf("MBFC population-threshold sweep (loss threshold 0.02,\n"
              "2 of 8 receivers congested at 60 pkt/s):\n");
  stats::Table t2({"population threshold", "mcast pkt/s (slowest rcvr)",
                   "worst TCP pkt/s"});
  for (double pop : {0.0, 0.2, 0.5, 0.9}) {
    baselines::MbfcParams p;
    p.loss_threshold = 0.02;
    p.population_threshold = pop;
    p.rate.initial_rate_pps = 50.0;
    const auto r = run_rate_baseline<baselines::MbfcSender>(
        n, /*trunk_pps=*/1e6, p, opt, /*slow_leaves=*/2, /*slow_leaf_pps=*/60.0);
    t2.add_row({stats::Table::num(pop, 2), stats::Table::num(r.mcast_pps),
                stats::Table::num(r.wtcp_pps)});
  }
  std::printf("%s\n", t2.render().c_str());
  std::printf("expected: thresholds above the 25%% congested fraction never\n"
              "cut, abandoning the two slow receivers; thresholds below it\n"
              "track them.\n\n");

  // ---- §6 extension: random-listening rate control vs LTRC ----------------------
  // Same topology at three different capacity scales, every sender with the
  // SAME parameterization: LTRC's fixed threshold fits at most one scale,
  // the random-listening rate controller fits all (no threshold to tune).
  std::printf("§6 extension: random-listening rate control, one\n"
              "parameterization across capacity scales (8 receivers):\n");
  stats::Table t4({"fair share pkt/s", "LTRC(0.01) mcast/TCP",
                   "RL-rate mcast/TCP"});
  for (double share : {25.0, 100.0, 400.0}) {
    const double trunk = share * (n + 1);
    baselines::LtrcParams lp;
    lp.loss_threshold = 0.01;
    lp.rate.initial_rate_pps = share / 2.0;
    const auto lr = run_rate_baseline<baselines::LtrcSender>(n, trunk, lp, opt);
    baselines::RlRateParams rp;
    rp.rate.initial_rate_pps = share / 2.0;
    const auto rr = run_rate_baseline<baselines::RlRateSender>(n, trunk, rp, opt);
    t4.add_row({stats::Table::num(share, 0),
                stats::Table::num(lr.wtcp_pps > 0 ? lr.mcast_pps / lr.wtcp_pps : 0, 2),
                stats::Table::num(rr.wtcp_pps > 0 ? rr.mcast_pps / rr.wtcp_pps : 0, 2)});
  }
  std::printf("%s\n", t4.render().c_str());

  // ---- naive listener vs RLA as receivers scale --------------------------------
  std::printf("window-based multicast as receiver count grows (per-branch\n"
              "bottlenecks 200 pkt/s, 1 TCP each): naive listener collapses,\n"
              "RLA holds (§3.2):\n");
  stats::Table t3({"receivers", "naive pkt/s", "RLA pkt/s", "WTCP pkt/s"});
  for (int nn : {2, 4, 8, 16}) {
    topo::FlatTreeConfig cfg;
    cfg.branches.assign(static_cast<std::size_t>(nn),
                        topo::FlatBranch{200.0, 1});
    cfg.duration = opt.duration;
    cfg.warmup = opt.warmup;
    cfg.seed = opt.seed;
    topo::FlatTreeConfig naive_cfg = cfg;
    naive_cfg.rla.fixed_pthresh = 1.0;
    const auto naive = topo::run_flat_tree(naive_cfg);
    const auto rla = topo::run_flat_tree(cfg);
    t3.add_row({std::to_string(nn),
                stats::Table::num(naive.rla.throughput_pps),
                stats::Table::num(rla.rla.throughput_pps),
                stats::Table::num(rla.worst_tcp().throughput_pps)});
  }
  std::printf("%s\n", t3.render().c_str());
  return 0;
}
