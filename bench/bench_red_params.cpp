// RED parameter sensitivity (the paper fixes min_th 5 / max_th 15 and "the
// default values used in the standard NS2.0 RED gateway" — this bench shows
// what those defaults buy and how fairness tightness responds to them).
//
// Sweeps, one at a time around the paper's operating point, on the
// 4-receiver restricted topology with RED gateways:
//   * thresholds (min_th, max_th)
//   * estimator gain w_q
//   * max_p (ns linterm)
// Reported: RLA/WTCP fairness ratio, bottleneck average queue, drop rate.
#include <cstdio>

#include "common.hpp"
#include "stats/table.hpp"
#include "topo/flat_tree.hpp"

using namespace rlacast;

namespace {

struct Probe {
  double ratio;
  double drop_rate;
  double rla_rtt;
};

Probe run(net::RedParams red, const bench::Options& opt) {
  topo::FlatTreeConfig cfg;
  cfg.branches.assign(4, topo::FlatBranch{200.0, 1});
  cfg.gateway = topo::GatewayType::kRed;
  cfg.red = red;
  cfg.duration = opt.duration;
  cfg.warmup = opt.warmup;
  cfg.seed = opt.seed;
  const auto res = topo::run_flat_tree(cfg);
  double drop = 0.0;
  for (double d : res.bottleneck_drop_rate) drop += d;
  drop /= static_cast<double>(res.bottleneck_drop_rate.size());
  return {res.rla.throughput_pps / res.worst_tcp().throughput_pps, drop,
          res.rla.avg_rtt};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("RED parameter sensitivity around the paper's "
                      "operating point",
                      opt);

  stats::Table t({"parameters", "RLA/WTCP", "drop rate", "RLA RTT (s)"});
  auto add = [&](const char* label, net::RedParams p) {
    const auto r = run(p, opt);
    t.add_row({label, stats::Table::num(r.ratio, 2),
               stats::Table::num(r.drop_rate, 4),
               stats::Table::num(r.rla_rtt, 3)});
  };

  net::RedParams paper;  // min 5 / max 15, w_q 0.002, max_p 0.1
  add("paper: min5/max15 wq.002 maxp.1", paper);

  net::RedParams th_low = paper;
  th_low.min_th = 2;
  th_low.max_th = 6;
  add("low thresholds: min2/max6", th_low);

  net::RedParams th_high = paper;
  th_high.min_th = 10;
  th_high.max_th = 19;
  add("high thresholds: min10/max19", th_high);

  net::RedParams slow_est = paper;
  slow_est.w_q = 0.0002;
  add("slow estimator: wq .0002", slow_est);

  net::RedParams fast_est = paper;
  fast_est.w_q = 0.02;
  add("fast estimator: wq .02", fast_est);

  net::RedParams gentle_p = paper;
  gentle_p.max_p = 0.02;
  add("gentle marking: maxp .02", gentle_p);

  net::RedParams harsh_p = paper;
  harsh_p.max_p = 0.5;
  add("harsh marking: maxp .5", harsh_p);

  std::printf("%s\n", t.render().c_str());
  std::printf(
      "shape check: fairness stays near 1 across the sweep (RED's\n"
      "equal-loss-probability property is parameter-robust); thresholds\n"
      "move the operating queue (RTT), max_p trades drop rate against\n"
      "queue length. The paper's settings sit comfortably in the middle.\n");
  return 0;
}
