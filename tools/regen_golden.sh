#!/usr/bin/env bash
# Regenerates the golden smoke-output hashes in tests/golden/.
#
# Run from anywhere after an INTENTIONAL behaviour change, with a built
# tree (default ./build, override as $1); commit the resulting diff
# alongside the change so the golden_bench ctest entries pass again.
set -euo pipefail
cd "$(dirname "$0")/.."
build=${1:-build}

benches=(bench_fig7_droptail bench_fig8_signals bench_fig9_red
         bench_fig10_rtt bench_multisession bench_workload)
for b in "${benches[@]}"; do
  bin="$build/bench/$b"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (cmake --build $build)" >&2
    exit 1
  fi
  "$bin" --smoke | sha256sum | awk '{print $1}' > "tests/golden/$b.sha256"
  echo "tests/golden/$b.sha256 <- $(cat tests/golden/$b.sha256)"
done
