#!/usr/bin/env bash
# Formats the C++ sources with clang-format (in place by default).
#
#   tools/format.sh                  # format everything tracked
#   tools/format.sh --check          # verify only (CI mode), no edits
#   tools/format.sh --check src/cc   # verify a subtree
#
# Exits 0 with a notice when clang-format is not installed, so local
# workflows on minimal containers keep working; CI installs the real tool
# and runs the authoritative check.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "clang-format not found; skipping (CI runs the authoritative check)" >&2
  exit 0
fi

check=0
if [[ "${1:-}" == "--check" ]]; then
  check=1
  shift
fi

paths=("$@")
if [[ ${#paths[@]} -eq 0 ]]; then
  paths=(src tests bench)
fi

mapfile -t files < <(git ls-files -- "${paths[@]/%//*.hpp}" \
                                    "${paths[@]/%//*.cpp}")
if [[ ${#files[@]} -eq 0 ]]; then
  echo "no C++ files under: ${paths[*]}" >&2
  exit 1
fi

if [[ $check -eq 1 ]]; then
  clang-format --dry-run -Werror "${files[@]}"
else
  clang-format -i "${files[@]}"
fi
