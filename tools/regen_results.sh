#!/usr/bin/env bash
# Regenerates the shipped result transcripts:
#   test_output.txt   - full ctest run
#   bench_output.txt  - every bench binary at its default (scaled) settings
# Usage: tools/regen_results.sh [build-dir]
set -euo pipefail
BUILD="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cmake --build "$ROOT/$BUILD"

ctest --test-dir "$ROOT/$BUILD" 2>&1 | tee "$ROOT/test_output.txt"

: > "$ROOT/bench_output.txt"
for b in "$ROOT/$BUILD"/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  echo "########## $(basename "$b")" | tee -a "$ROOT/bench_output.txt"
  "$b" 2>&1 | tee -a "$ROOT/bench_output.txt"
  echo | tee -a "$ROOT/bench_output.txt"
done
