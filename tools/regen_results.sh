#!/usr/bin/env bash
# Regenerates the shipped result transcripts:
#   test_output.txt   - full ctest run
#   bench_output.txt  - every bench binary at its default (scaled) settings
#   results/*.json    - machine-readable batches from the exp/-migrated benches
#   BENCH_*.json      - repo-root trajectory snapshots (engine throughput,
#                       workload fairness minima, peak RSS) whose git history
#                       tracks the perf/fairness trend across PRs
# Benches migrated onto the exp:: runner get --jobs $(nproc) (case-level
# parallelism; per-run seeds are thread-count independent, so the text
# tables are unchanged) and write their results.json into results/.
# Usage: tools/regen_results.sh [build-dir]
set -euo pipefail
BUILD="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc)"

# A regenerated transcript that silently omits a crashed bench is worse than
# no transcript: every failure below aborts the whole regeneration loudly.
fail() {
  echo "regen_results: FATAL: $*" >&2
  exit 1
}

cmake --build "$ROOT/$BUILD"

ctest --test-dir "$ROOT/$BUILD" 2>&1 | tee "$ROOT/test_output.txt"

mkdir -p "$ROOT/results"

# Benches migrated onto the exp/ runner (accept --jobs/--json).
exp_benches="bench_fig7_droptail bench_fig9_red bench_fig10_rtt bench_multisession bench_engine bench_robustness bench_adversary bench_workload bench_scale"
is_exp_bench() {
  local name="$1" b
  for b in $exp_benches; do [ "$b" = "$name" ] && return 0; done
  return 1
}

# Benches that also emit a repo-root trajectory snapshot.
trajectory_args() {
  case "$1" in
    bench_engine)   echo "--trajectory $ROOT/BENCH_engine.json" ;;
    bench_workload) echo "--trajectory $ROOT/BENCH_workload.json" ;;
    bench_scale)    echo "--trajectory $ROOT/BENCH_scale.json" ;;
    *)              echo "" ;;
  esac
}

: > "$ROOT/bench_output.txt"
for b in "$ROOT/$BUILD"/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  name="$(basename "$b")"
  echo "########## $name" | tee -a "$ROOT/bench_output.txt"
  if is_exp_bench "$name"; then
    json="$ROOT/results/$name.json"
    rm -f "$json"
    set +e
    # shellcheck disable=SC2046  # trajectory_args is empty or two words
    "$b" --jobs "$JOBS" --json "$json" \
      $(trajectory_args "$name") 2>&1 \
      | tee -a "$ROOT/bench_output.txt"
    status=${PIPESTATUS[0]}
    set -e
    [ "$status" -eq 0 ] || fail "$name exited with status $status"
    [ -s "$json" ] || fail "$name emitted no JSON ($json missing or empty)"
    grep -q '"runs"' "$json" ||
      fail "$name JSON is malformed: no \"runs\" array in $json"
  else
    set +e
    "$b" 2>&1 | tee -a "$ROOT/bench_output.txt"
    status=${PIPESTATUS[0]}
    set -e
    [ "$status" -eq 0 ] || fail "$name exited with status $status"
  fi
  echo | tee -a "$ROOT/bench_output.txt"
done

# Crash-report summaries from any --isolate sweeps. Each report's header
# block (id, case, outcome, repro command) is folded into bench_output.txt
# so a regenerated transcript shows at a glance whether any run crashed.
{
  echo "########## crash reports (results/crashes)"
  found=0
  for r in "$ROOT/results/crashes"/*.crash.txt; do
    [ -f "$r" ] || continue
    found=1
    echo "--- $(basename "$r")"
    sed -n '1,10p' "$r"
  done
  [ "$found" -eq 1 ] || echo "(none)"
  echo
} | tee -a "$ROOT/bench_output.txt"
